//! Labeled plans and datasets — the unit of training data for every model.

use serde::{Deserialize, Serialize};

use crate::tree::PlanTree;

/// The machine a plan's labels were collected on.
///
/// The paper's "across-more" scenario (Drift V, Sec. II) executes the same
/// workloads on two differently-configured machines; the engine crate defines
/// a latency profile for each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineId {
    /// Paper machine M1 (Xeon E5-2650 class).
    M1,
    /// Paper machine M2 (Core i5-8500 class).
    M2,
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineId::M1 => f.write_str("M1"),
            MachineId::M2 => f.write_str("M2"),
        }
    }
}

/// A plan whose nodes carry actual execution labels, plus its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledPlan {
    /// The plan tree with `est_*` and `actual_*` fields populated.
    pub tree: PlanTree,
    /// Which synthetic database the query ran against.
    pub db_id: u16,
    /// Which machine profile produced the latency labels.
    pub machine: MachineId,
}

impl LabeledPlan {
    /// Root latency label in milliseconds.
    #[inline]
    pub fn latency_ms(&self) -> f64 {
        self.tree.actual_ms()
    }
}

/// A collection of labeled plans, the common currency of training and
/// evaluation across all estimators.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// The labeled plans.
    pub plans: Vec<LabeledPlan>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Dataset { plans: Vec::new() }
    }

    /// Dataset from plans.
    pub fn from_plans(plans: Vec<LabeledPlan>) -> Self {
        Dataset { plans }
    }

    /// Number of plans.
    #[inline]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True iff no plans.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Append another dataset.
    pub fn extend(&mut self, other: Dataset) {
        self.plans.extend(other.plans);
    }

    /// Plans filtered to one database.
    pub fn filter_db(&self, db_id: u16) -> Dataset {
        Dataset {
            plans: self
                .plans
                .iter()
                .filter(|p| p.db_id == db_id)
                .cloned()
                .collect(),
        }
    }

    /// Plans from every database *except* `db_id` (the leave-one-out split
    /// of the paper's across-database protocol).
    pub fn exclude_db(&self, db_id: u16) -> Dataset {
        Dataset {
            plans: self
                .plans
                .iter()
                .filter(|p| p.db_id != db_id)
                .cloned()
                .collect(),
        }
    }

    /// Deterministic split into (train, test) by taking every k-th plan into
    /// the test set, with `test_fraction` in (0, 1).
    pub fn split(&self, test_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1)"
        );
        let stride = (1.0 / test_fraction).round().max(2.0) as usize;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, p) in self.plans.iter().enumerate() {
            if i % stride == stride - 1 {
                test.push(p.clone());
            } else {
                train.push(p.clone());
            }
        }
        (Dataset::from_plans(train), Dataset::from_plans(test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_type::NodeType;
    use crate::OpPayload;

    fn plan(db: u16) -> LabeledPlan {
        LabeledPlan {
            tree: PlanTree::singleton(NodeType::SeqScan, OpPayload::Other),
            db_id: db,
            machine: MachineId::M1,
        }
    }

    #[test]
    fn leave_one_out_split() {
        let ds = Dataset::from_plans(vec![plan(0), plan(1), plan(1), plan(2)]);
        assert_eq!(ds.filter_db(1).len(), 2);
        assert_eq!(ds.exclude_db(1).len(), 2);
        assert_eq!(ds.exclude_db(7).len(), 4);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let ds = Dataset::from_plans((0..100).map(|i| plan(i as u16)).collect());
        let (train, test) = ds.split(0.2);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 20);
        let (train2, test2) = ds.split(0.2);
        assert_eq!(train.len(), train2.len());
        assert_eq!(test.plans[0].db_id, test2.plans[0].db_id);
    }
}
