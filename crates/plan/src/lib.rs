#![warn(missing_docs)]
//! Physical query-plan trees and the structural signals DACE consumes.
//!
//! This crate is the shared vocabulary of the workspace: every other crate —
//! the optimizer/executor substrate ([`dace-engine`]), the DACE model
//! ([`dace-core`]) and the baselines — exchanges [`PlanTree`] values.
//!
//! A [`PlanTree`] mirrors what `EXPLAIN ANALYZE` reports in PostgreSQL: a tree
//! of physical operators where each node carries the optimizer's *estimated*
//! cardinality and cost and, once executed, the *actual* cardinality and
//! elapsed time. From a tree the crate derives the three structural artifacts
//! the paper's feature extraction needs (Sec. IV-B):
//!
//! * the DFS (preorder) node sequence,
//! * the reflexive–transitive ancestor matrix `A(p)` used as the
//!   tree-structured attention mask (Eq. 2–3),
//! * per-node heights (shortest path to the root) feeding the loss adjuster
//!   (Eq. 4).
//!
//! [`dace-engine`]: ../dace_engine/index.html
//! [`dace-core`]: ../dace_core/index.html

mod explain;
mod label;
mod node;
mod node_type;
mod tree;
mod validate;

pub use explain::explain_tree;
pub use label::{Dataset, LabeledPlan, MachineId};
pub use node::{CmpOp, JoinInfo, OpPayload, PlanNode, PredicateInfo, ScanInfo};
pub use node_type::{NodeKind, NodeType, NODE_TYPE_COUNT};
pub use tree::{NodeId, PlanTree, TreeBuilder};
pub use validate::{validate_plan, PlanValidationError, DEFAULT_MAX_PLAN_DEPTH};
