//! Plan nodes: operator type, estimates, labels and operator payloads.

use serde::{Deserialize, Serialize};

use crate::node_type::NodeType;
use crate::tree::NodeId;

/// Comparison operator of a filter predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `BETWEEN lo AND hi`
    Between,
    /// `IN (v1, .., vk)`
    In,
    /// `LIKE 'prefix%'`
    LikePrefix,
}

impl CmpOp {
    /// Number of distinct operators (one-hot width for baselines that encode
    /// predicates, e.g. MSCN and TPool).
    pub const COUNT: usize = 8;

    /// Dense index for one-hot encodings.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Lt => 1,
            CmpOp::Gt => 2,
            CmpOp::Le => 3,
            CmpOp::Ge => 4,
            CmpOp::Between => 5,
            CmpOp::In => 6,
            CmpOp::LikePrefix => 7,
        }
    }

    /// SQL spelling (BETWEEN/IN/LIKE render their operands elsewhere).
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Between => "BETWEEN",
            CmpOp::In => "IN",
            CmpOp::LikePrefix => "LIKE",
        }
    }
}

/// A filter predicate as attached to a scan node.
///
/// Literals are stored as *normalized ranks* in `[0, 1]` (their quantile in
/// the column's value domain) so that plan consumers — chiefly the baselines
/// that featurize predicates — never need access to the raw data. This is the
/// same normalization MSCN applies to its predicate encodings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredicateInfo {
    /// Global column id (catalog-assigned, unique within a database).
    pub column_id: u32,
    /// Comparison operator.
    pub op: CmpOp,
    /// Normalized literal (lower bound for `Between`).
    pub literal_rank: f64,
    /// Normalized upper bound for `Between`; unused otherwise.
    pub literal_rank_hi: f64,
    /// Selectivity the optimizer estimated for this predicate alone.
    pub est_selectivity: f64,
}

/// Payload of a scan node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanInfo {
    /// Catalog table id within the database.
    pub table_id: u32,
    /// Table name (for EXPLAIN output and SQL round-trips).
    pub table_name: String,
    /// Predicates pushed down to this scan.
    pub predicates: Vec<PredicateInfo>,
}

/// Payload of a join node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinInfo {
    /// Column id on the outer (left / probe) side.
    pub left_column: u32,
    /// Column id on the inner (right / build) side.
    pub right_column: u32,
    /// Rendered join condition, e.g. `t.id = mk.movie_id`.
    pub condition: String,
}

/// Operator-specific payload. DACE itself ignores everything here (it only
/// consumes node type + estimates — Insight I of the paper), but the
/// predicate-learning baselines and the EXPLAIN printer need it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpPayload {
    /// Base-table access.
    Scan(ScanInfo),
    /// Binary join.
    Join(JoinInfo),
    /// Anything else (sorts, aggregates, auxiliary nodes).
    Other,
}

impl OpPayload {
    /// Scan payload, if this is a scan.
    pub fn as_scan(&self) -> Option<&ScanInfo> {
        match self {
            OpPayload::Scan(s) => Some(s),
            _ => None,
        }
    }

    /// Join payload, if this is a join.
    pub fn as_join(&self) -> Option<&JoinInfo> {
        match self {
            OpPayload::Join(j) => Some(j),
            _ => None,
        }
    }
}

/// A single node of a physical plan tree.
///
/// `est_*` fields are what the optimizer predicted when the plan was built;
/// `actual_*` fields are filled in after (simulated) execution. Both cost and
/// time are *cumulative*: they cover the whole sub-plan rooted at this node,
/// matching PostgreSQL's `EXPLAIN (ANALYZE)` semantics, and matching what the
/// paper uses as sub-plan labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// Physical operator type.
    pub node_type: NodeType,
    /// Optimizer-estimated output rows.
    pub est_rows: f64,
    /// Optimizer-estimated total cost of the sub-plan (abstract cost units).
    pub est_cost: f64,
    /// Average output tuple width in bytes.
    pub width: u32,
    /// Actual output rows (0 before execution).
    pub actual_rows: f64,
    /// Actual elapsed time of the sub-plan in milliseconds (0 before execution).
    pub actual_ms: f64,
    /// Operator payload.
    pub payload: OpPayload,
    /// Child node ids, outer (probe) side first for joins.
    pub children: Vec<NodeId>,
}

impl PlanNode {
    /// A node with the given type and payload and zeroed statistics; used by
    /// [`crate::TreeBuilder`].
    pub fn new(node_type: NodeType, payload: OpPayload) -> Self {
        PlanNode {
            node_type,
            est_rows: 0.0,
            est_cost: 0.0,
            width: 8,
            actual_rows: 0.0,
            actual_ms: 0.0,
            payload,
            children: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_indices_are_dense() {
        let ops = [
            CmpOp::Eq,
            CmpOp::Lt,
            CmpOp::Gt,
            CmpOp::Le,
            CmpOp::Ge,
            CmpOp::Between,
            CmpOp::In,
            CmpOp::LikePrefix,
        ];
        let mut seen = [false; CmpOp::COUNT];
        for op in ops {
            assert!(!seen[op.index()], "duplicate index for {op:?}");
            seen[op.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn payload_accessors() {
        let scan = OpPayload::Scan(ScanInfo {
            table_id: 1,
            table_name: "t".into(),
            predicates: vec![],
        });
        assert!(scan.as_scan().is_some());
        assert!(scan.as_join().is_none());
        assert!(OpPayload::Other.as_scan().is_none());
    }
}
