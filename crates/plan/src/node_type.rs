//! The 16 physical operator types the paper's encoder one-hot encodes.

use serde::{Deserialize, Serialize};

/// Number of distinct [`NodeType`] variants; the one-hot width of the node
/// encoding (the paper, Sec. V-A: "we consider 16 node types").
pub const NODE_TYPE_COUNT: usize = 16;

/// Physical operator type of a plan node.
///
/// The set mirrors the operators PostgreSQL emits for the SPJA workloads the
/// paper evaluates (scans, joins, sorts, aggregates and the auxiliary nodes
/// that accompany them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum NodeType {
    /// Full sequential scan of a base table.
    SeqScan = 0,
    /// B-tree index scan returning heap tuples in index order.
    IndexScan = 1,
    /// Index-only scan (no heap fetches).
    IndexOnlyScan = 2,
    /// Bitmap index scan producing a TID bitmap.
    BitmapIndexScan = 3,
    /// Heap scan driven by a TID bitmap.
    BitmapHeapScan = 4,
    /// Nested-loop join.
    NestedLoop = 5,
    /// Hash join (probe side is the outer child).
    HashJoin = 6,
    /// Merge join over sorted inputs.
    MergeJoin = 7,
    /// Hash-table build feeding a [`NodeType::HashJoin`].
    Hash = 8,
    /// Full sort of the input.
    Sort = 9,
    /// Materialization of an intermediate result.
    Materialize = 10,
    /// Hash-based grouped aggregation.
    HashAggregate = 11,
    /// Sort-based (grouped or plain) aggregation.
    GroupAggregate = 12,
    /// Parallel gather of worker streams.
    Gather = 13,
    /// LIMIT node.
    Limit = 14,
    /// Trivial result / projection node.
    Result = 15,
}

/// Coarse operator class, used by the substrate's cost and latency models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Leaf operators reading a base table.
    Scan,
    /// Binary operators combining two inputs.
    Join,
    /// Unary operators transforming a single input.
    Unary,
}

impl NodeType {
    /// All variants in one-hot index order.
    pub const ALL: [NodeType; NODE_TYPE_COUNT] = [
        NodeType::SeqScan,
        NodeType::IndexScan,
        NodeType::IndexOnlyScan,
        NodeType::BitmapIndexScan,
        NodeType::BitmapHeapScan,
        NodeType::NestedLoop,
        NodeType::HashJoin,
        NodeType::MergeJoin,
        NodeType::Hash,
        NodeType::Sort,
        NodeType::Materialize,
        NodeType::HashAggregate,
        NodeType::GroupAggregate,
        NodeType::Gather,
        NodeType::Limit,
        NodeType::Result,
    ];

    /// Index of this type in the one-hot encoding (stable across runs).
    #[inline]
    pub fn one_hot_index(self) -> usize {
        self as usize
    }

    /// Inverse of [`NodeType::one_hot_index`]; `None` if out of range.
    pub fn from_index(idx: usize) -> Option<NodeType> {
        NodeType::ALL.get(idx).copied()
    }

    /// Coarse operator class.
    pub fn kind(self) -> NodeKind {
        use NodeType::*;
        match self {
            SeqScan | IndexScan | IndexOnlyScan | BitmapIndexScan | BitmapHeapScan => {
                NodeKind::Scan
            }
            NestedLoop | HashJoin | MergeJoin => NodeKind::Join,
            Hash | Sort | Materialize | HashAggregate | GroupAggregate | Gather | Limit
            | Result => NodeKind::Unary,
        }
    }

    /// `EXPLAIN`-style display name.
    pub fn display_name(self) -> &'static str {
        use NodeType::*;
        match self {
            SeqScan => "Seq Scan",
            IndexScan => "Index Scan",
            IndexOnlyScan => "Index Only Scan",
            BitmapIndexScan => "Bitmap Index Scan",
            BitmapHeapScan => "Bitmap Heap Scan",
            NestedLoop => "Nested Loop",
            HashJoin => "Hash Join",
            MergeJoin => "Merge Join",
            Hash => "Hash",
            Sort => "Sort",
            Materialize => "Materialize",
            HashAggregate => "HashAggregate",
            GroupAggregate => "GroupAggregate",
            Gather => "Gather",
            Limit => "Limit",
            Result => "Result",
        }
    }
}

impl std::fmt::Display for NodeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_indices_are_dense_and_stable() {
        for (i, ty) in NodeType::ALL.iter().enumerate() {
            assert_eq!(ty.one_hot_index(), i);
            assert_eq!(NodeType::from_index(i), Some(*ty));
        }
        assert_eq!(NodeType::ALL.len(), NODE_TYPE_COUNT);
        assert_eq!(NodeType::from_index(NODE_TYPE_COUNT), None);
    }

    #[test]
    fn kinds_partition_sensibly() {
        assert_eq!(NodeType::SeqScan.kind(), NodeKind::Scan);
        assert_eq!(NodeType::HashJoin.kind(), NodeKind::Join);
        assert_eq!(NodeType::Sort.kind(), NodeKind::Unary);
        let scans = NodeType::ALL
            .iter()
            .filter(|t| t.kind() == NodeKind::Scan)
            .count();
        let joins = NodeType::ALL
            .iter()
            .filter(|t| t.kind() == NodeKind::Join)
            .count();
        assert_eq!(scans, 5);
        assert_eq!(joins, 3);
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<_> = NodeType::ALL.iter().map(|t| t.display_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NODE_TYPE_COUNT);
    }
}
