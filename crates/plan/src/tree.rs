//! Arena-backed plan trees and the structural artifacts of Sec. IV-B:
//! DFS order, ancestor (partial-order) matrix and node heights.

use serde::{Deserialize, Serialize};

use crate::node::{OpPayload, PlanNode};
use crate::node_type::NodeType;

/// Index of a node within its [`PlanTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena slot as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A physical query plan tree.
///
/// Nodes live in an arena; `root` is the tree's root node. Trees produced by
/// [`TreeBuilder`] (and by the planner in `dace-engine`) store nodes in DFS
/// preorder, but no method here relies on that: all structural accessors
/// traverse explicitly from `root`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanTree {
    nodes: Vec<PlanNode>,
    root: NodeId,
}

/// Builder for [`PlanTree`] values; children must be built before their
/// parent (bottom-up), mirroring how a planner assembles plans.
#[derive(Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<PlanNode>,
}

impl TreeBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TreeBuilder { nodes: Vec::new() }
    }

    /// Add a leaf node; returns its id.
    pub fn leaf(&mut self, node: PlanNode) -> NodeId {
        assert!(node.children.is_empty(), "leaf must have no children");
        self.push(node)
    }

    /// Add an internal node over existing children; returns its id.
    pub fn internal(&mut self, mut node: PlanNode, children: Vec<NodeId>) -> NodeId {
        for &c in &children {
            assert!(c.index() < self.nodes.len(), "child {c:?} not built yet");
        }
        node.children = children;
        self.push(node)
    }

    fn push(&mut self, node: PlanNode) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("plan too large"));
        self.nodes.push(node);
        id
    }

    /// Mutable access to an already-built node (e.g. to fill in estimates).
    pub fn node_mut(&mut self, id: NodeId) -> &mut PlanNode {
        &mut self.nodes[id.index()]
    }

    /// Read access to an already-built node.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id.index()]
    }

    /// Finish the tree with `root` as the root node.
    ///
    /// # Panics
    /// Panics if any built node other than the root's descendants would be
    /// orphaned — every node must be reachable from `root`, and no node may
    /// have two parents.
    pub fn finish(self, root: NodeId) -> PlanTree {
        let tree = PlanTree {
            nodes: self.nodes,
            root,
        };
        tree.validate();
        tree
    }
}

impl PlanTree {
    /// Construct a single-node tree (useful in tests).
    pub fn singleton(node_type: NodeType, payload: OpPayload) -> PlanTree {
        let mut b = TreeBuilder::new();
        let id = b.leaf(PlanNode::new(node_type, payload));
        b.finish(id)
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tree has no nodes (never true for valid trees).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id.index()]
    }

    /// Mutable node access (used when attaching execution labels).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut PlanNode {
        &mut self.nodes[id.index()]
    }

    /// All node ids in arena order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// DFS preorder sequence of node ids (parent before children, children
    /// in plan order). This is the node sequence fed to the transformer.
    pub fn dfs(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            order.push(id);
            // Push children in reverse so they pop in plan order.
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Heights of all nodes *in DFS order*: the length of the (unique) path
    /// from the node to the root, so `heights()[0] == 0` for the root.
    ///
    /// The paper defines a node's height as "the length of the shortest path
    /// from the node to its root node" (Sec. IV-B(3)); in a tree that path is
    /// unique, so this is the node's depth.
    pub fn heights(&self) -> Vec<u32> {
        let mut heights = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, 0u32)];
        while let Some((id, h)) = stack.pop() {
            heights.push(h);
            for &c in self.node(id).children.iter().rev() {
                stack.push((c, h + 1));
            }
        }
        heights
    }

    /// The ancestor (reflexive–transitive partial-order) matrix `A(p)` of
    /// Eq. 3, flattened row-major over the DFS order: entry `i * n + j` is
    /// `true` iff DFS-node `i` is an ancestor of — or equal to — DFS-node `j`.
    ///
    /// Used directly as the transformer attention mask: query node `i`
    /// attends to key node `j` iff `A[i][j]`, i.e. every node sees exactly
    /// itself and its descendants, "the same logic as the actual execution of
    /// the query plan" (Sec. IV-C).
    pub fn ancestor_matrix(&self) -> Vec<bool> {
        let order = self.dfs();
        let n = order.len();
        // In DFS preorder, the descendants of the node at position i occupy
        // the contiguous range [i, i + subtree_size(i)). Compute subtree
        // sizes over the DFS order with a post-order pass.
        let sizes = self.dfs_subtree_sizes(&order);
        let mut m = vec![false; n * n];
        for i in 0..n {
            for j in i..i + sizes[i] {
                m[i * n + j] = true;
            }
        }
        m
    }

    /// Subtree size of each DFS position (`order` must be `self.dfs()`).
    fn dfs_subtree_sizes(&self, order: &[NodeId]) -> Vec<usize> {
        let n = order.len();
        let mut pos = vec![0usize; self.nodes.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        let mut sizes = vec![1usize; n];
        // Children appear after parents in preorder; iterate in reverse so
        // every child's size is final before its parent accumulates it.
        for i in (0..n).rev() {
            let id = order[i];
            for &c in &self.node(id).children {
                sizes[i] += sizes[pos[c.index()]];
            }
        }
        sizes
    }

    /// Parent of each node (`None` for the root), indexed by arena id.
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut parents = vec![None; self.nodes.len()];
        for id in self.ids() {
            for &c in &self.node(id).children {
                parents[c.index()] = Some(id);
            }
        }
        parents
    }

    /// Extract the sub-plan rooted at `id` as an independent tree.
    pub fn sub_plan(&self, id: NodeId) -> PlanTree {
        let mut builder = TreeBuilder::new();
        let root = self.copy_into(&mut builder, id);
        builder.finish(root)
    }

    fn copy_into(&self, builder: &mut TreeBuilder, id: NodeId) -> NodeId {
        let src = self.node(id);
        let children: Vec<NodeId> = src
            .children
            .iter()
            .map(|&c| self.copy_into(builder, c))
            .collect();
        let mut node = src.clone();
        node.children.clear();
        builder.internal(node, children)
    }

    /// Root-level estimated cost (what `EXPLAIN` prints as total cost).
    #[inline]
    pub fn est_cost(&self) -> f64 {
        self.node(self.root).est_cost
    }

    /// Root-level actual latency in milliseconds.
    #[inline]
    pub fn actual_ms(&self) -> f64 {
        self.node(self.root).actual_ms
    }

    /// Ids of all scan (leaf table-access) nodes.
    pub fn scan_nodes(&self) -> Vec<NodeId> {
        self.ids()
            .filter(|&id| self.node(id).payload.as_scan().is_some())
            .collect()
    }

    /// Verify tree shape: every node reachable from the root exactly once.
    fn validate(&self) {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            assert!(
                !seen[id.index()],
                "node {id:?} reachable twice — not a tree"
            );
            seen[id.index()] = true;
            count += 1;
            stack.extend(self.node(id).children.iter().copied());
        }
        assert_eq!(
            count,
            self.nodes.len(),
            "unreachable nodes in plan arena ({} reached of {})",
            count,
            self.nodes.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::OpPayload;

    /// Build the 5-node plan of the paper's Fig. 3:
    /// Aggregate -> Sort -> HashJoin -> {SeqScan a, SeqScan b}.
    pub(crate) fn fig3_tree() -> PlanTree {
        let mut b = TreeBuilder::new();
        let a = b.leaf(PlanNode::new(NodeType::SeqScan, OpPayload::Other));
        let b2 = b.leaf(PlanNode::new(NodeType::SeqScan, OpPayload::Other));
        let j = b.internal(
            PlanNode::new(NodeType::HashJoin, OpPayload::Other),
            vec![a, b2],
        );
        let s = b.internal(PlanNode::new(NodeType::Sort, OpPayload::Other), vec![j]);
        let g = b.internal(
            PlanNode::new(NodeType::GroupAggregate, OpPayload::Other),
            vec![s],
        );
        b.finish(g)
    }

    #[test]
    fn dfs_is_preorder() {
        let t = fig3_tree();
        let order = t.dfs();
        let types: Vec<NodeType> = order.iter().map(|&id| t.node(id).node_type).collect();
        assert_eq!(
            types,
            vec![
                NodeType::GroupAggregate,
                NodeType::Sort,
                NodeType::HashJoin,
                NodeType::SeqScan,
                NodeType::SeqScan,
            ]
        );
    }

    #[test]
    fn heights_match_fig3() {
        let t = fig3_tree();
        assert_eq!(t.heights(), vec![0, 1, 2, 3, 3]);
    }

    #[test]
    fn ancestor_matrix_matches_fig3() {
        let t = fig3_tree();
        let n = t.len();
        let m = t.ancestor_matrix();
        let at = |i: usize, j: usize| m[i * n + j];
        // Root (agg) is an ancestor of everything.
        for j in 0..n {
            assert!(at(0, j));
        }
        // Scans see only themselves.
        assert!(at(3, 3) && !at(3, 4) && !at(3, 2) && !at(3, 0));
        assert!(at(4, 4) && !at(4, 3));
        // Join sees itself and both scans, not sort/agg.
        assert!(at(2, 2) && at(2, 3) && at(2, 4) && !at(2, 1) && !at(2, 0));
    }

    #[test]
    fn ancestor_matrix_is_reflexive_antisymmetric_transitive() {
        let t = fig3_tree();
        let n = t.len();
        let m = t.ancestor_matrix();
        let at = |i: usize, j: usize| m[i * n + j];
        for i in 0..n {
            assert!(at(i, i), "reflexivity");
            for j in 0..n {
                if i != j {
                    assert!(!(at(i, j) && at(j, i)), "antisymmetry");
                }
                for k in 0..n {
                    if at(i, j) && at(j, k) {
                        assert!(at(i, k), "transitivity");
                    }
                }
            }
        }
    }

    #[test]
    fn sub_plan_extraction_preserves_shape() {
        let t = fig3_tree();
        let order = t.dfs();
        let join_id = order[2];
        let sub = t.sub_plan(join_id);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.node(sub.root()).node_type, NodeType::HashJoin);
        assert_eq!(sub.heights(), vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "unreachable nodes")]
    fn builder_rejects_orphans() {
        let mut b = TreeBuilder::new();
        let _orphan = b.leaf(PlanNode::new(NodeType::SeqScan, OpPayload::Other));
        let root = b.leaf(PlanNode::new(NodeType::SeqScan, OpPayload::Other));
        let _ = b.finish(root);
    }

    #[test]
    fn singleton_tree() {
        let t = PlanTree::singleton(NodeType::SeqScan, OpPayload::Other);
        assert_eq!(t.len(), 1);
        assert_eq!(t.heights(), vec![0]);
        assert_eq!(t.ancestor_matrix(), vec![true]);
    }
}
