//! Input hardening: non-panicking structural and numeric validation of
//! [`PlanTree`] values.
//!
//! [`TreeBuilder`](crate::TreeBuilder) cannot produce a malformed tree, but
//! plans also arrive from outside the builder — deserialized from JSON, or
//! handed to the serving layer by an untrusted client — and every structural
//! accessor (`dfs`, `heights`, `ancestor_matrix`) indexes the arena without
//! bounds recovery. [`validate_plan`] re-checks everything those accessors
//! assume, returning a typed error instead of panicking, and additionally
//! rejects the hostile *values* a learned estimator must never featurize:
//! NaN/Inf estimated cost or cardinality, and trees deeper than a
//! configurable limit (an attention mask is `O(n²)`, so depth bounds are the
//! serving layer's admission defense against quadratic blowup).

use crate::tree::PlanTree;

/// Default depth limit for [`validate_plan`] callers that have no better
/// number: far above any plan a real optimizer emits (PostgreSQL plans are
/// rarely deeper than a few tens of nodes), low enough to bound the `O(n²)`
/// attention mask an adversarial chain would inflate.
pub const DEFAULT_MAX_PLAN_DEPTH: usize = 512;

/// Why a plan failed validation. Every variant names the first offending
/// node (arena index) where one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanValidationError {
    /// The arena holds no nodes at all (only constructible by
    /// deserialization — the builder requires a root).
    EmptyTree,
    /// The root id points outside the arena.
    RootOutOfRange {
        /// The out-of-range root index.
        root: usize,
        /// Number of nodes in the arena.
        len: usize,
    },
    /// A node lists a child outside the arena.
    ChildOutOfRange {
        /// The node holding the bad edge.
        node: usize,
        /// The out-of-range child index.
        child: usize,
        /// Number of nodes in the arena.
        len: usize,
    },
    /// A node is reachable from the root through two different paths (the
    /// arena encodes a DAG or a cycle, not a tree).
    NotATree {
        /// The first node found reachable twice.
        node: usize,
    },
    /// Some arena nodes are unreachable from the root.
    UnreachableNodes {
        /// Nodes reached from the root.
        reached: usize,
        /// Nodes in the arena.
        len: usize,
    },
    /// The tree is deeper than the caller's limit.
    TooDeep {
        /// Measured depth (root = 0).
        depth: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A node carries a NaN/Inf (or `< -1`, whose `ln(1 + x)` is undefined)
    /// estimated cost.
    NonFiniteCost {
        /// The offending node.
        node: usize,
    },
    /// A node carries a NaN/Inf (or `< -1`) estimated cardinality.
    NonFiniteRows {
        /// The offending node.
        node: usize,
    },
}

impl std::fmt::Display for PlanValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanValidationError::EmptyTree => write!(f, "plan has no nodes"),
            PlanValidationError::RootOutOfRange { root, len } => {
                write!(f, "root {root} outside arena of {len} nodes")
            }
            PlanValidationError::ChildOutOfRange { node, child, len } => {
                write!(
                    f,
                    "node {node} lists child {child} outside arena of {len} nodes"
                )
            }
            PlanValidationError::NotATree { node } => {
                write!(f, "node {node} reachable twice — not a tree")
            }
            PlanValidationError::UnreachableNodes { reached, len } => {
                write!(f, "only {reached} of {len} nodes reachable from the root")
            }
            PlanValidationError::TooDeep { depth, limit } => {
                write!(f, "plan depth {depth} exceeds limit {limit}")
            }
            PlanValidationError::NonFiniteCost { node } => {
                write!(f, "node {node} has a non-finite estimated cost")
            }
            PlanValidationError::NonFiniteRows { node } => {
                write!(f, "node {node} has a non-finite estimated cardinality")
            }
        }
    }
}

impl std::error::Error for PlanValidationError {}

/// Check whether `x` survives the featurizer's `ln(1 + x)` transform.
#[inline]
fn featurizable(x: f64) -> bool {
    x.is_finite() && x > -1.0
}

/// Validate a plan before featurization: structure (every structural
/// accessor's preconditions, checked without panicking), depth against
/// `max_depth` (root = depth 0; `0` disables the depth check), and numeric
/// sanity of every node's estimated cost and cardinality.
///
/// Returns the first violation found; a plan that passes is safe to run
/// through `dfs`/`heights`/`ancestor_matrix` and to featurize into finite
/// features.
pub fn validate_plan(tree: &PlanTree, max_depth: usize) -> Result<(), PlanValidationError> {
    let len = tree.len();
    if len == 0 {
        return Err(PlanValidationError::EmptyTree);
    }
    let root = tree.root().index();
    if root >= len {
        return Err(PlanValidationError::RootOutOfRange { root, len });
    }
    // Iterative DFS with explicit bookkeeping: bounds-check every edge
    // before following it, detect re-reachability, and track depth.
    let mut seen = vec![false; len];
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    let mut reached = 0usize;
    while let Some((idx, depth)) = stack.pop() {
        if seen[idx] {
            return Err(PlanValidationError::NotATree { node: idx });
        }
        seen[idx] = true;
        reached += 1;
        if max_depth > 0 && depth > max_depth {
            return Err(PlanValidationError::TooDeep {
                depth,
                limit: max_depth,
            });
        }
        let node = tree.node(crate::NodeId(idx as u32));
        if !featurizable(node.est_cost) {
            return Err(PlanValidationError::NonFiniteCost { node: idx });
        }
        if !featurizable(node.est_rows) {
            return Err(PlanValidationError::NonFiniteRows { node: idx });
        }
        for &c in &node.children {
            let ci = c.index();
            if ci >= len {
                return Err(PlanValidationError::ChildOutOfRange {
                    node: idx,
                    child: ci,
                    len,
                });
            }
            stack.push((ci, depth + 1));
        }
    }
    if reached != len {
        return Err(PlanValidationError::UnreachableNodes { reached, len });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{OpPayload, PlanNode};
    use crate::node_type::NodeType;
    use crate::tree::TreeBuilder;

    fn chain(depth: usize) -> PlanTree {
        let mut b = TreeBuilder::new();
        let mut id = b.leaf(PlanNode::new(NodeType::SeqScan, OpPayload::Other));
        for _ in 0..depth {
            id = b.internal(PlanNode::new(NodeType::Sort, OpPayload::Other), vec![id]);
        }
        b.finish(id)
    }

    #[test]
    fn builder_trees_validate() {
        assert_eq!(validate_plan(&chain(10), DEFAULT_MAX_PLAN_DEPTH), Ok(()));
        assert_eq!(
            validate_plan(&PlanTree::singleton(NodeType::SeqScan, OpPayload::Other), 1),
            Ok(())
        );
    }

    #[test]
    fn depth_limit_rejects_deep_chains() {
        let t = chain(20);
        assert_eq!(validate_plan(&t, 0), Ok(()), "0 disables the depth check");
        assert_eq!(validate_plan(&t, 64), Ok(()));
        assert!(matches!(
            validate_plan(&t, 8),
            Err(PlanValidationError::TooDeep { depth: _, limit: 8 })
        ));
    }

    #[test]
    fn non_finite_estimates_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -2.0] {
            let mut t = chain(2);
            let root = t.root();
            t.node_mut(root).est_cost = bad;
            assert!(matches!(
                validate_plan(&t, 0),
                Err(PlanValidationError::NonFiniteCost { .. })
            ));
            let mut t = chain(2);
            let root = t.root();
            t.node_mut(root).est_rows = bad;
            assert!(matches!(
                validate_plan(&t, 0),
                Err(PlanValidationError::NonFiniteRows { .. })
            ));
        }
    }

    /// Deserialize a surgically-edited copy of a serialized chain(2) tree
    /// (nodes: leaf 0, Sort 1 → [0], Sort 2 → [1]; root 2). Edits must keep
    /// the JSON parseable — validation, not serde, is under test.
    fn corrupted(from: &str, to: &str) -> PlanTree {
        let json = serde_json::to_string(&chain(2)).unwrap();
        assert!(json.contains(from), "edit target {from:?} not in {json}");
        serde_json::from_str(&json.replacen(from, to, 1)).unwrap()
    }

    #[test]
    fn structural_corruption_is_rejected_not_panicked() {
        // Structurally-invalid trees can only arrive through deserialization;
        // forge them with serde to exercise exactly that path.

        // Root out of range.
        assert!(matches!(
            validate_plan(&corrupted("\"root\":2", "\"root\":99"), 0),
            Err(PlanValidationError::RootOutOfRange { root: 99, len: 3 })
        ));

        // Child edge out of range (node 2's edge to node 1 rewritten to 7).
        assert!(matches!(
            validate_plan(&corrupted("\"children\":[1]", "\"children\":[7]"), 0),
            Err(PlanValidationError::ChildOutOfRange { child: 7, .. })
        ));

        // Node 1 reachable twice: not a tree.
        assert!(matches!(
            validate_plan(&corrupted("\"children\":[1]", "\"children\":[1,1]"), 0),
            Err(PlanValidationError::NotATree { node: 1 })
        ));

        // Orphaned node: root points at the leaf, stranding both Sorts.
        assert!(matches!(
            validate_plan(&corrupted("\"root\":2", "\"root\":0"), 0),
            Err(PlanValidationError::UnreachableNodes { reached: 1, len: 3 })
        ));
    }
}
