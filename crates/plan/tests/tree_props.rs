//! Property tests over randomly generated plan trees: the structural
//! artifacts of Sec. IV-B must satisfy their invariants for *any* tree.

use dace_plan::{NodeType, OpPayload, PlanNode, PlanTree, TreeBuilder};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build a random tree of up to `max_nodes` nodes from a seed (seeded RNG
/// keeps shrinking meaningful — the seed is the case).
fn random_tree(seed: u64, max_nodes: usize) -> PlanTree {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new();
    // Build a random forest bottom-up, then join roots until one remains.
    let n_leaves = rng.gen_range(1..=max_nodes.max(2) / 2);
    let mut roots: Vec<dace_plan::NodeId> = (0..n_leaves)
        .map(|_| {
            let ty = NodeType::ALL[rng.gen_range(0..5)]; // scan types
            b.leaf(PlanNode::new(ty, OpPayload::Other))
        })
        .collect();
    while roots.len() > 1 {
        if roots.len() >= 2 && rng.gen_bool(0.6) {
            // Binary join node.
            let r = roots.swap_remove(rng.gen_range(0..roots.len()));
            let l = roots.swap_remove(rng.gen_range(0..roots.len()));
            let ty = [
                NodeType::HashJoin,
                NodeType::NestedLoop,
                NodeType::MergeJoin,
            ][rng.gen_range(0..3)];
            roots.push(b.internal(PlanNode::new(ty, OpPayload::Other), vec![l, r]));
        } else {
            // Unary node on a random root.
            let c = roots.swap_remove(rng.gen_range(0..roots.len()));
            let ty = [
                NodeType::Sort,
                NodeType::Materialize,
                NodeType::HashAggregate,
                NodeType::Limit,
            ][rng.gen_range(0..4)];
            roots.push(b.internal(PlanNode::new(ty, OpPayload::Other), vec![c]));
        }
    }
    let root = roots.pop().unwrap();
    // Occasionally add unary nodes on top.
    let mut root = root;
    for _ in 0..rng.gen_range(0..3) {
        root = b.internal(
            PlanNode::new(NodeType::GroupAggregate, OpPayload::Other),
            vec![root],
        );
    }
    b.finish(root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dfs_is_a_permutation_with_parents_first(seed in 0u64..10_000) {
        let tree = random_tree(seed, 24);
        let dfs = tree.dfs();
        prop_assert_eq!(dfs.len(), tree.len());
        let mut pos = vec![usize::MAX; tree.len()];
        for (i, id) in dfs.iter().enumerate() {
            pos[id.index()] = i;
        }
        prop_assert!(pos.iter().all(|&p| p != usize::MAX), "not a permutation");
        // Preorder: every parent precedes its children.
        for id in tree.ids() {
            for &c in &tree.node(id).children {
                prop_assert!(pos[id.index()] < pos[c.index()]);
            }
        }
        // The root is first.
        prop_assert_eq!(dfs[0], tree.root());
    }

    #[test]
    fn ancestor_matrix_is_a_partial_order_consistent_with_parents(seed in 0u64..10_000) {
        let tree = random_tree(seed, 20);
        let n = tree.len();
        let order = tree.dfs();
        let m = tree.ancestor_matrix();
        let at = |i: usize, j: usize| m[i * n + j];
        // Axioms (Eq. 2): reflexive, antisymmetric, transitive.
        for i in 0..n {
            prop_assert!(at(i, i));
            for j in 0..n {
                if i != j {
                    prop_assert!(!(at(i, j) && at(j, i)));
                }
                for k in 0..n {
                    if at(i, j) && at(j, k) {
                        prop_assert!(at(i, k));
                    }
                }
            }
        }
        // Consistency with the parent relation: A[parent][child] = 1.
        let mut pos = vec![usize::MAX; n];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for id in tree.ids() {
            for &c in &tree.node(id).children {
                prop_assert!(at(pos[id.index()], pos[c.index()]));
                prop_assert!(!at(pos[c.index()], pos[id.index()]));
            }
        }
        // Row sums equal subtree sizes; the root's row is all ones.
        for j in 0..n {
            prop_assert!(at(0, j), "root must dominate everything");
        }
    }

    #[test]
    fn heights_increase_by_one_along_edges(seed in 0u64..10_000) {
        let tree = random_tree(seed, 24);
        let order = tree.dfs();
        let heights = tree.heights();
        let mut pos = vec![usize::MAX; tree.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        prop_assert_eq!(heights[0], 0);
        for id in tree.ids() {
            for &c in &tree.node(id).children {
                prop_assert_eq!(
                    heights[pos[c.index()]],
                    heights[pos[id.index()]] + 1
                );
            }
        }
    }

    #[test]
    fn subplan_extraction_is_consistent(seed in 0u64..10_000) {
        let tree = random_tree(seed, 16);
        for id in tree.ids() {
            let sub = tree.sub_plan(id);
            prop_assert_eq!(sub.node(sub.root()).node_type, tree.node(id).node_type);
            // Sub-plan size equals the ancestor-matrix row sum of the node.
            let order = tree.dfs();
            let pos = order.iter().position(|&x| x == id).unwrap();
            let n = tree.len();
            let m = tree.ancestor_matrix();
            let row_sum = (0..n).filter(|&j| m[pos * n + j]).count();
            prop_assert_eq!(sub.len(), row_sum);
        }
    }

    #[test]
    fn serde_roundtrip(seed in 0u64..2_000) {
        let tree = random_tree(seed, 16);
        let json = serde_json::to_string(&tree).unwrap();
        let back: PlanTree = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(tree, back);
    }
}
