#![warn(missing_docs)]
//! Logical SPJA queries and the paper's workload generators.
//!
//! Queries are select–project–join–aggregate shapes over one synthetic
//! database: a connected set of tables joined along foreign-key edges,
//! filter predicates with literals drawn from the actual data, optional
//! grouped aggregation and LIMIT. [`render_sql`] prints them as SQL for
//! examples and debugging.
//!
//! Two generator families mirror the paper's workloads (Sec. V-A):
//!
//! * [`ComplexWorkloadGen`] — the Zero-Shot-style "complex" workload used
//!   for workloads 1 and 2: arbitrary FK-subgraph joins (up to 6 tables),
//!   0–4 predicates, optional aggregation.
//! * [`MscnWorkloadGen`] — the MSCN benchmark on the IMDB-like database
//!   used for workload 3: a 100k-query training distribution plus the
//!   `synthetic`, `scale` and `job-light` test sets with their characteristic
//!   template drifts.

mod parser;
mod query;
mod sqlgen;
mod workload;

pub use parser::{parse_sql, ParseError};
pub use query::{Aggregate, JoinEdge, Predicate, Query};
pub use sqlgen::render_sql;
pub use workload::{ComplexWorkloadGen, MscnSet, MscnWorkloadGen};
