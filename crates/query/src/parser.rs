//! A small SQL parser for the SPJA subset this workspace generates.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT (* | select_item ("," select_item)*)
//! FROM table ("," table)*
//! [WHERE condition ("AND" condition)*]
//! [GROUP BY column]
//! [LIMIT n] ";"?
//!
//! select_item := COUNT(*) | SUM(col) | AVG(col) | MIN(col) | MAX(col) | col
//! condition   := col "=" col                 -- join (both sides columns)
//!              | col op literal              -- filter (op ∈ =, <, >, <=, >=)
//!              | col BETWEEN lit AND lit
//!              | col IN "(" lit ("," lit)* ")"
//! col         := table "." column
//! ```
//!
//! [`parse_sql`] resolves names against a [`Schema`] and returns the same
//! [`Query`] value the generators produce, so
//! `parse_sql(render_sql(q)) == q` — a property the test suite exercises.

use dace_catalog::{ColumnId, Schema, TableId};
use dace_plan::CmpOp;

use crate::query::{Aggregate, JoinEdge, Predicate, Query};

/// A parse or name-resolution error with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse a SQL string of the supported subset against `schema`.
pub fn parse_sql(sql: &str, schema: &Schema, db_id: u16) -> Result<Query, ParseError> {
    Parser::new(sql, schema, db_id).parse()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(i64),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Semi,
    Op(String),
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    schema: &'a Schema,
    db_id: u16,
}

impl<'a> Parser<'a> {
    fn new(sql: &str, schema: &'a Schema, db_id: u16) -> Parser<'a> {
        Parser {
            toks: tokenize(sql),
            pos: 0,
            schema,
            db_id,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let offset = self
            .toks
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(usize::MAX);
        Err(ParseError {
            message: message.into(),
            offset,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next_tok(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn parse(mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        // Select list: defer name resolution of aggregates until tables are
        // known, so remember raw items.
        let mut raw_aggs: Vec<(String, Option<(String, String)>)> = Vec::new();
        let mut select_star = false;
        let mut raw_group_cols: Vec<(String, String)> = Vec::new();
        if self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            select_star = true;
        } else {
            loop {
                if let Some(Tok::Ident(name)) = self.peek().cloned() {
                    let upper = name.to_ascii_uppercase();
                    if ["COUNT", "SUM", "AVG", "MIN", "MAX"].contains(&upper.as_str()) {
                        self.pos += 1;
                        self.expect(&Tok::LParen)?;
                        if upper == "COUNT" {
                            self.expect(&Tok::Star)?;
                            self.expect(&Tok::RParen)?;
                            raw_aggs.push((upper, None));
                        } else {
                            let col = self.parse_qualified_name()?;
                            self.expect(&Tok::RParen)?;
                            raw_aggs.push((upper, Some(col)));
                        }
                    } else {
                        // A bare column in the select list (the GROUP BY key).
                        let col = self.parse_qualified_name()?;
                        raw_group_cols.push(col);
                    }
                } else {
                    return self.err("expected select item");
                }
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        self.expect_keyword("FROM")?;
        let mut tables = Vec::new();
        loop {
            match self.next_tok() {
                Some(Tok::Ident(name)) => tables.push(self.resolve_table(&name)?),
                _ => return self.err("expected table name"),
            }
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }

        let mut joins = Vec::new();
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                self.parse_condition(&mut joins, &mut predicates)?;
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }

        let mut group_by = None;
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let col = self.parse_qualified_name()?;
            group_by = Some(self.resolve_column(&col.0, &col.1)?);
        }

        let mut limit = None;
        if self.eat_keyword("LIMIT") {
            match self.next_tok() {
                Some(Tok::Number(n)) if n >= 0 => limit = Some(n as u64),
                _ => return self.err("expected LIMIT count"),
            }
        }
        let _ = self.peek() == Some(&Tok::Semi) && {
            self.pos += 1;
            true
        };
        if self.pos != self.toks.len() {
            return self.err("trailing tokens after query");
        }

        // Resolve aggregates.
        let mut aggregates = Vec::new();
        for (kind, col) in raw_aggs {
            let agg = match (kind.as_str(), col) {
                ("COUNT", None) => Aggregate::CountStar,
                ("SUM", Some((t, c))) => Aggregate::Sum(self.resolve_column(&t, &c)?),
                ("AVG", Some((t, c))) => Aggregate::Avg(self.resolve_column(&t, &c)?),
                ("MIN", Some((t, c))) => Aggregate::Min(self.resolve_column(&t, &c)?),
                ("MAX", Some((t, c))) => Aggregate::Max(self.resolve_column(&t, &c)?),
                _ => return self.err("malformed aggregate"),
            };
            aggregates.push(agg);
        }
        let _ = select_star;

        Ok(Query {
            db_id: self.db_id,
            tables,
            joins,
            predicates,
            group_by,
            aggregates,
            limit,
        })
    }

    /// `table "." column`.
    fn parse_qualified_name(&mut self) -> Result<(String, String), ParseError> {
        let table = match self.next_tok() {
            Some(Tok::Ident(t)) => t,
            _ => return self.err("expected table name"),
        };
        self.expect(&Tok::Dot)?;
        let column = match self.next_tok() {
            Some(Tok::Ident(c)) => c,
            _ => return self.err("expected column name"),
        };
        Ok((table, column))
    }

    fn parse_condition(
        &mut self,
        joins: &mut Vec<JoinEdge>,
        predicates: &mut Vec<Predicate>,
    ) -> Result<(), ParseError> {
        let (lt, lc) = self.parse_qualified_name()?;
        let left = self.resolve_column(&lt, &lc)?;

        if self.eat_keyword("BETWEEN") {
            let lo = self.parse_literal()?;
            self.expect_keyword("AND")?;
            let hi = self.parse_literal()?;
            predicates.push(Predicate {
                column: left,
                op: CmpOp::Between,
                values: vec![lo, hi],
            });
            return Ok(());
        }
        if self.eat_keyword("IN") {
            self.expect(&Tok::LParen)?;
            let mut values = vec![self.parse_literal()?];
            while self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                values.push(self.parse_literal()?);
            }
            self.expect(&Tok::RParen)?;
            predicates.push(Predicate {
                column: left,
                op: CmpOp::In,
                values,
            });
            return Ok(());
        }

        let op = match self.next_tok() {
            Some(Tok::Op(op)) => op,
            _ => return self.err("expected comparison operator"),
        };
        // Join condition: right side is a qualified column.
        if op == "="
            && matches!(self.peek(), Some(Tok::Ident(_)))
            && matches!(self.toks.get(self.pos + 1), Some((Tok::Dot, _)))
        {
            let (rt, rc) = self.parse_qualified_name()?;
            let right = self.resolve_column(&rt, &rc)?;
            // Normalize to child-FK → parent-PK orientation.
            let (child_col, parent_col) = if right.column() == 0 {
                (left, right)
            } else if left.column() == 0 {
                (right, left)
            } else {
                return self.err("join condition must involve a primary key");
            };
            joins.push(JoinEdge {
                child: child_col.table(),
                child_column: child_col.column(),
                parent: parent_col.table(),
            });
            return Ok(());
        }
        let v = self.parse_literal()?;
        let op = match op.as_str() {
            "=" => CmpOp::Eq,
            "<" => CmpOp::Lt,
            ">" => CmpOp::Gt,
            "<=" => CmpOp::Le,
            ">=" => CmpOp::Ge,
            other => return self.err(format!("unsupported operator {other}")),
        };
        predicates.push(Predicate {
            column: left,
            op,
            values: vec![v],
        });
        Ok(())
    }

    fn parse_literal(&mut self) -> Result<i64, ParseError> {
        match self.next_tok() {
            Some(Tok::Number(n)) => Ok(n),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected literal, found {other:?}"))
            }
        }
    }

    fn resolve_table(&self, name: &str) -> Result<TableId, ParseError> {
        self.schema
            .tables
            .iter()
            .position(|t| t.name == name)
            .map(|i| TableId(i as u32))
            .ok_or_else(|| ParseError {
                message: format!("unknown table {name}"),
                offset: 0,
            })
    }

    fn resolve_column(&self, table: &str, column: &str) -> Result<ColumnId, ParseError> {
        let t = self.resolve_table(table)?;
        let tdef = self.schema.table(t);
        tdef.columns
            .iter()
            .position(|c| c.name == column)
            .map(|i| ColumnId::new(t, i as u32))
            .ok_or_else(|| ParseError {
                message: format!("unknown column {table}.{column}"),
                offset: 0,
            })
    }
}

fn tokenize(sql: &str) -> Vec<(Tok, usize)> {
    let bytes = sql.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, i));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Op("=".into()), i));
                i += 1;
            }
            '<' | '>' => {
                let start = i;
                i += 1;
                let mut op = c.to_string();
                if i < bytes.len() && bytes[i] == b'=' {
                    op.push('=');
                    i += 1;
                }
                toks.push((Tok::Op(op), start));
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = sql[start..i].parse().unwrap_or(0);
                toks.push((Tok::Number(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(sql[start..i].to_string()), start));
            }
            _ => i += 1, // skip unknown bytes (robustness over strictness)
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqlgen::render_sql;
    use crate::workload::ComplexWorkloadGen;
    use dace_catalog::{generate_database, suite_specs};

    #[test]
    fn round_trips_generated_workloads() {
        let db = generate_database(&suite_specs()[0], 0.01);
        let queries = ComplexWorkloadGen::default().generate(&db, 120);
        let mut round_tripped = 0;
        for q in &queries {
            // LIKE-prefix predicates render as BETWEEN (the dictionary-range
            // convention), so they round-trip as Between — normalize first.
            let mut expect = q.clone();
            for p in &mut expect.predicates {
                if p.op == CmpOp::LikePrefix {
                    p.op = CmpOp::Between;
                }
            }
            let sql = render_sql(q, &db.schema);
            let parsed = parse_sql(&sql, &db.schema, q.db_id)
                .unwrap_or_else(|e| panic!("parse failed for `{sql}`: {e}"));
            assert_eq!(parsed.tables, expect.tables, "sql: {sql}");
            assert_eq!(parsed.joins, expect.joins, "sql: {sql}");
            assert_eq!(parsed.predicates, expect.predicates, "sql: {sql}");
            assert_eq!(parsed.group_by, expect.group_by, "sql: {sql}");
            assert_eq!(parsed.aggregates, expect.aggregates, "sql: {sql}");
            assert_eq!(parsed.limit, expect.limit, "sql: {sql}");
            round_tripped += 1;
        }
        assert_eq!(round_tripped, queries.len());
    }

    #[test]
    fn parses_handwritten_sql() {
        let db = generate_database(&suite_specs()[1], 0.01);
        let schema = &db.schema;
        let t0 = schema.tables[0].name.clone();
        let fk = schema.fks[0];
        let child = schema.table(fk.child).name.clone();
        let child_col = schema.table(fk.child).columns[fk.child_column as usize]
            .name
            .clone();
        let parent = schema.table(fk.parent).name.clone();
        let sql = format!(
            "SELECT COUNT(*) FROM {child}, {parent} WHERE {child}.{child_col} = {parent}.id AND {t0}.id <= 100 LIMIT 5;"
        );
        let q = parse_sql(&sql, schema, 1).unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].child, fk.child);
        assert_eq!(q.joins[0].parent, fk.parent);
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].op, CmpOp::Le);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.aggregates, vec![Aggregate::CountStar]);
    }

    #[test]
    fn rejects_unknown_names_and_garbage() {
        let db = generate_database(&suite_specs()[1], 0.01);
        assert!(parse_sql("SELECT * FROM nonexistent;", &db.schema, 1).is_err());
        assert!(parse_sql("SELECT FROM", &db.schema, 1).is_err());
        assert!(parse_sql("", &db.schema, 1).is_err());
        let t0 = db.schema.tables[0].name.clone();
        assert!(parse_sql(&format!("SELECT * FROM {t0} WHERE"), &db.schema, 1).is_err());
        assert!(parse_sql(&format!("SELECT * FROM {t0} extra garbage"), &db.schema, 1).is_err());
    }

    #[test]
    fn error_messages_carry_position() {
        let db = generate_database(&suite_specs()[1], 0.01);
        let err = parse_sql("SELECT FROM x", &db.schema, 1).unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }
}
