//! The logical query model.

use dace_catalog::{ColumnId, TableId};
use dace_plan::CmpOp;
use serde::{Deserialize, Serialize};

/// An equi-join along a foreign-key edge: `child.child_column = parent.id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// Referencing table.
    pub child: TableId,
    /// FK column index within the child table.
    pub child_column: u32,
    /// Referenced table (joined on its primary key, column 0).
    pub parent: TableId,
}

impl JoinEdge {
    /// Global column id of the child side.
    pub fn child_column_id(self) -> ColumnId {
        ColumnId::new(self.child, self.child_column)
    }

    /// Global column id of the parent side (the primary key).
    pub fn parent_column_id(self) -> ColumnId {
        ColumnId::new(self.parent, 0)
    }
}

/// A filter predicate over one column.
///
/// Literal conventions by operator:
/// * `Eq`/`Lt`/`Gt`/`Le`/`Ge`: `values[0]` is the literal;
/// * `Between`: `values == [lo, hi]`;
/// * `In`: `values` is the member list;
/// * `LikePrefix`: `values == [lo, hi]`, a dictionary-code range covering the
///   prefix (the generator's text dictionaries are ordered, so a prefix is a
///   contiguous code range).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    /// Filtered column.
    pub column: ColumnId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal value(s); see operator conventions above.
    pub values: Vec<i64>,
}

/// An aggregate expression in the select list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// `COUNT(*)`
    CountStar,
    /// `SUM(col)`
    Sum(ColumnId),
    /// `AVG(col)`
    Avg(ColumnId),
    /// `MIN(col)`
    Min(ColumnId),
    /// `MAX(col)`
    Max(ColumnId),
}

/// A logical SPJA query against one database of the suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Database this query targets.
    pub db_id: u16,
    /// Referenced tables (connected through `joins`; no self-joins).
    pub tables: Vec<TableId>,
    /// Join edges; `tables.len() == joins.len() + 1` for connected queries.
    pub joins: Vec<JoinEdge>,
    /// Filter predicates.
    pub predicates: Vec<Predicate>,
    /// Optional GROUP BY column.
    pub group_by: Option<ColumnId>,
    /// Aggregates (empty means `SELECT *`).
    pub aggregates: Vec<Aggregate>,
    /// Optional LIMIT.
    pub limit: Option<u64>,
}

impl Query {
    /// Single-table scan query.
    pub fn scan(db_id: u16, table: TableId) -> Query {
        Query {
            db_id,
            tables: vec![table],
            joins: Vec::new(),
            predicates: Vec::new(),
            group_by: None,
            aggregates: Vec::new(),
            limit: None,
        }
    }

    /// Number of joins.
    #[inline]
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }

    /// Predicates that apply to `table`.
    pub fn predicates_on(&self, table: TableId) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.column.table() == table)
            .collect()
    }

    /// True iff the join graph connects all referenced tables.
    pub fn is_connected(&self) -> bool {
        if self.tables.len() <= 1 {
            return true;
        }
        let mut reached = vec![self.tables[0]];
        let mut changed = true;
        while changed {
            changed = false;
            for j in &self.joins {
                let has_child = reached.contains(&j.child);
                let has_parent = reached.contains(&j.parent);
                if has_child != has_parent {
                    reached.push(if has_child { j.parent } else { j.child });
                    changed = true;
                }
            }
        }
        self.tables.iter().all(|t| reached.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q2() -> Query {
        Query {
            db_id: 0,
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinEdge {
                child: TableId(0),
                child_column: 1,
                parent: TableId(1),
            }],
            predicates: vec![Predicate {
                column: ColumnId::new(TableId(1), 2),
                op: CmpOp::Gt,
                values: vec![10],
            }],
            group_by: None,
            aggregates: vec![Aggregate::CountStar],
            limit: None,
        }
    }

    #[test]
    fn connectivity() {
        let q = q2();
        assert!(q.is_connected());
        let mut disconnected = q.clone();
        disconnected.tables.push(TableId(5));
        assert!(!disconnected.is_connected());
        assert!(Query::scan(0, TableId(3)).is_connected());
    }

    #[test]
    fn predicates_on_table() {
        let q = q2();
        assert_eq!(q.predicates_on(TableId(1)).len(), 1);
        assert!(q.predicates_on(TableId(0)).is_empty());
    }

    #[test]
    fn join_edge_column_ids() {
        let j = JoinEdge {
            child: TableId(2),
            child_column: 3,
            parent: TableId(4),
        };
        assert_eq!(j.child_column_id(), ColumnId::new(TableId(2), 3));
        assert_eq!(j.parent_column_id(), ColumnId::new(TableId(4), 0));
    }
}
