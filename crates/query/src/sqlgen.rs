//! SQL rendering of logical queries.

use std::fmt::Write as _;

use dace_catalog::{ColumnId, Schema};
use dace_plan::CmpOp;

use crate::query::{Aggregate, Query};

/// Render `query` as SQL against `schema`.
///
/// Literals are printed as their integer codes; text/date columns would
/// render through their dictionaries in a full system, which changes nothing
/// about plan shapes or costs.
pub fn render_sql(query: &Query, schema: &Schema) -> String {
    let col_name = |c: ColumnId| -> String {
        let t = schema.table(c.table());
        format!("{}.{}", t.name, t.columns[c.column() as usize].name)
    };

    let mut sql = String::from("SELECT ");
    if query.aggregates.is_empty() {
        sql.push('*');
    } else {
        let mut parts = Vec::new();
        if let Some(g) = query.group_by {
            parts.push(col_name(g));
        }
        for agg in &query.aggregates {
            parts.push(match agg {
                Aggregate::CountStar => "COUNT(*)".to_string(),
                Aggregate::Sum(c) => format!("SUM({})", col_name(*c)),
                Aggregate::Avg(c) => format!("AVG({})", col_name(*c)),
                Aggregate::Min(c) => format!("MIN({})", col_name(*c)),
                Aggregate::Max(c) => format!("MAX({})", col_name(*c)),
            });
        }
        sql.push_str(&parts.join(", "));
    }

    let tables: Vec<&str> = query
        .tables
        .iter()
        .map(|&t| schema.table(t).name.as_str())
        .collect();
    let _ = write!(sql, " FROM {}", tables.join(", "));

    let mut conds = Vec::new();
    for j in &query.joins {
        conds.push(format!(
            "{} = {}",
            col_name(j.child_column_id()),
            col_name(j.parent_column_id())
        ));
    }
    for p in &query.predicates {
        let col = col_name(p.column);
        conds.push(match p.op {
            CmpOp::Between | CmpOp::LikePrefix => {
                format!("{col} BETWEEN {} AND {}", p.values[0], p.values[1])
            }
            CmpOp::In => {
                let vals: Vec<String> = p.values.iter().map(|v| v.to_string()).collect();
                format!("{col} IN ({})", vals.join(", "))
            }
            op => format!("{col} {} {}", op.sql(), p.values[0]),
        });
    }
    if !conds.is_empty() {
        let _ = write!(sql, " WHERE {}", conds.join(" AND "));
    }
    if let Some(g) = query.group_by {
        let _ = write!(sql, " GROUP BY {}", col_name(g));
    }
    if let Some(l) = query.limit {
        let _ = write!(sql, " LIMIT {l}");
    }
    sql.push(';');
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{JoinEdge, Predicate};
    use dace_catalog::{suite_specs, TableId};

    #[test]
    fn renders_joins_predicates_group_limit() {
        let schema = suite_specs()[0].build_schema();
        // Find a real FK edge to join along.
        let fk = schema.fks[0];
        let q = Query {
            db_id: 0,
            tables: vec![fk.child, fk.parent],
            joins: vec![JoinEdge {
                child: fk.child,
                child_column: fk.child_column,
                parent: fk.parent,
            }],
            predicates: vec![Predicate {
                column: ColumnId::new(fk.parent, 0),
                op: CmpOp::Le,
                values: vec![500],
            }],
            group_by: Some(ColumnId::new(fk.child, 1)),
            aggregates: vec![Aggregate::CountStar],
            limit: Some(10),
        };
        let sql = render_sql(&q, &schema);
        assert!(sql.starts_with("SELECT "));
        assert!(sql.contains("COUNT(*)"));
        assert!(sql.contains(" WHERE "));
        assert!(sql.contains(" = "));
        assert!(sql.contains("<= 500"));
        assert!(sql.contains("GROUP BY"));
        assert!(sql.ends_with("LIMIT 10;"));
    }

    #[test]
    fn renders_select_star_scan() {
        let schema = suite_specs()[0].build_schema();
        let q = Query::scan(0, TableId(0));
        let sql = render_sql(&q, &schema);
        assert!(sql.starts_with("SELECT * FROM "));
        assert!(!sql.contains("WHERE"));
    }

    #[test]
    fn renders_between_and_in() {
        let schema = suite_specs()[0].build_schema();
        let mut q = Query::scan(0, TableId(0));
        q.predicates = vec![
            Predicate {
                column: ColumnId::new(TableId(0), 0),
                op: CmpOp::Between,
                values: vec![5, 15],
            },
            Predicate {
                column: ColumnId::new(TableId(0), 0),
                op: CmpOp::In,
                values: vec![1, 2, 3],
            },
        ];
        let sql = render_sql(&q, &schema);
        assert!(sql.contains("BETWEEN 5 AND 15"));
        assert!(sql.contains("IN (1, 2, 3)"));
    }
}
