//! Seeded workload generators mirroring the paper's three workloads.

use dace_catalog::{ColumnId, ColumnType, Database, Distribution, TableId};
use dace_plan::CmpOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::query::{Aggregate, JoinEdge, Predicate, Query};

/// Zero-Shot-style "complex" workload generator (workloads 1 and 2):
/// random connected FK subgraphs with up to `max_joins` joins, up to
/// `max_predicates` filters with literals drawn from the data, and optional
/// grouped aggregation.
#[derive(Debug, Clone)]
pub struct ComplexWorkloadGen {
    /// Maximum number of joins per query.
    pub max_joins: usize,
    /// Maximum number of filter predicates per query.
    pub max_predicates: usize,
    /// Probability a query aggregates (with optional GROUP BY).
    pub agg_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ComplexWorkloadGen {
    fn default() -> Self {
        ComplexWorkloadGen {
            max_joins: 5,
            max_predicates: 4,
            agg_prob: 0.5,
            seed: 0xC0FFEE,
        }
    }
}

impl ComplexWorkloadGen {
    /// Generate `count` queries against `db`.
    pub fn generate(&self, db: &Database, count: usize) -> Vec<Query> {
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (db.db_id() as u64).wrapping_mul(0x517C_C1B7));
        (0..count).map(|_| self.one_query(db, &mut rng)).collect()
    }

    fn one_query(&self, db: &Database, rng: &mut SmallRng) -> Query {
        let n_tables = db.schema.tables.len() as u32;
        let start = TableId(rng.gen_range(0..n_tables));
        let target_joins = rng.gen_range(0..=self.max_joins);
        let (tables, joins) = grow_join_subgraph(db, start, target_joins, rng);

        let n_preds = rng.gen_range(0..=self.max_predicates);
        let predicates = random_predicates(db, &tables, n_preds, rng, 0.0, 1.0);

        let (group_by, aggregates) = if rng.gen_bool(self.agg_prob) {
            random_aggregation(db, &tables, rng)
        } else {
            (None, Vec::new())
        };
        let limit = if aggregates.is_empty() && rng.gen_bool(0.25) {
            Some(rng.gen_range(1..=1000))
        } else {
            None
        };
        Query {
            db_id: db.db_id(),
            tables,
            joins,
            predicates,
            group_by,
            aggregates,
            limit,
        }
    }
}

/// Which MSCN test set to generate (workload 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MscnSet {
    /// 5,000 queries from the training templates with restricted filter
    /// ranges (Drift I: similar templates).
    Synthetic,
    /// 500 queries with more joins than training (template scale-up).
    Scale,
    /// 70 star-join queries in the JOB-light style.
    JobLight,
}

impl MscnSet {
    /// The paper's query count for this set.
    pub fn default_count(self) -> usize {
        match self {
            MscnSet::Synthetic => 5_000,
            MscnSet::Scale => 500,
            MscnSet::JobLight => 70,
        }
    }
}

/// MSCN benchmark generator over the IMDB-like database (workload 3).
///
/// Training queries have 0–2 joins starting from the fact table; the test
/// sets shift templates as in the published benchmark.
#[derive(Debug, Clone)]
pub struct MscnWorkloadGen {
    /// RNG seed.
    pub seed: u64,
}

impl Default for MscnWorkloadGen {
    fn default() -> Self {
        MscnWorkloadGen { seed: 0x115C4 }
    }
}

impl MscnWorkloadGen {
    /// The 100k-query (nominal) training distribution; `count` scales it.
    pub fn gen_train(&self, db: &Database, count: usize) -> Vec<Query> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        (0..count)
            .map(|_| self.template_query(db, 0..=2, 0.0, 1.0, &mut rng))
            .collect()
    }

    /// One of the three test sets; `count` overrides the paper's size.
    pub fn gen_test(&self, db: &Database, set: MscnSet, count: usize) -> Vec<Query> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xDEAD_BEEF ^ set.default_count() as u64);
        match set {
            // Same templates, restricted literal range (the benchmark's
            // synthetic set re-samples the training templates).
            MscnSet::Synthetic => (0..count)
                .map(|_| self.template_query(db, 0..=2, 0.15, 0.85, &mut rng))
                .collect(),
            // More joins than seen in training.
            MscnSet::Scale => (0..count)
                .map(|_| self.template_query(db, 1..=4, 0.0, 1.0, &mut rng))
                .collect(),
            // Star joins around the fact table, à la JOB-light.
            MscnSet::JobLight => (0..count)
                .map(|_| self.job_light_query(db, &mut rng))
                .collect(),
        }
    }

    fn template_query(
        &self,
        db: &Database,
        joins: std::ops::RangeInclusive<usize>,
        rank_lo: f64,
        rank_hi: f64,
        rng: &mut SmallRng,
    ) -> Query {
        let target_joins = rng.gen_range(joins);
        let (tables, join_edges) = grow_join_subgraph(db, TableId(0), target_joins, rng);
        let n_preds = rng.gen_range(1..=3);
        let predicates = random_predicates(db, &tables, n_preds, rng, rank_lo, rank_hi);
        Query {
            db_id: db.db_id(),
            tables,
            joins: join_edges,
            predicates,
            group_by: None,
            aggregates: vec![Aggregate::CountStar],
            limit: None,
        }
    }

    fn job_light_query(&self, db: &Database, rng: &mut SmallRng) -> Query {
        // Star join: fact table plus 1–4 of its direct FK parents.
        let fact = TableId(0);
        let mut fk_edges: Vec<JoinEdge> = db
            .schema
            .fks
            .iter()
            .filter(|e| e.child == fact)
            .map(|e| JoinEdge {
                child: e.child,
                child_column: e.child_column,
                parent: e.parent,
            })
            .collect();
        // Deterministic order, then sample a prefix of a shuffle.
        fk_edges.sort_by_key(|e| e.parent.0);
        let k = rng.gen_range(1..=fk_edges.len().min(4));
        let mut joins = Vec::with_capacity(k);
        for _ in 0..k {
            let idx = rng.gen_range(0..fk_edges.len());
            joins.push(fk_edges.swap_remove(idx));
        }
        let mut tables = vec![fact];
        tables.extend(joins.iter().map(|j| j.parent));
        let n_preds = rng.gen_range(1..=2);
        let predicates = random_predicates(db, &tables, n_preds, rng, 0.0, 1.0);
        Query {
            db_id: db.db_id(),
            tables,
            joins,
            predicates,
            group_by: None,
            aggregates: vec![Aggregate::CountStar],
            limit: None,
        }
    }
}

/// Grow a connected subgraph of the FK graph from `start`, adding up to
/// `target_joins` edges. Returns (tables, joins); fewer joins if the graph
/// runs out of incident edges.
fn grow_join_subgraph(
    db: &Database,
    start: TableId,
    target_joins: usize,
    rng: &mut SmallRng,
) -> (Vec<TableId>, Vec<JoinEdge>) {
    let mut tables = vec![start];
    let mut joins = Vec::new();
    for _ in 0..target_joins {
        // Candidate FK edges touching the current table set that would add a
        // new table (self-joins and cycles excluded).
        let candidates: Vec<JoinEdge> = db
            .schema
            .fks
            .iter()
            .filter_map(|e| {
                let has_child = tables.contains(&e.child);
                let has_parent = tables.contains(&e.parent);
                if has_child != has_parent {
                    Some(JoinEdge {
                        child: e.child,
                        child_column: e.child_column,
                        parent: e.parent,
                    })
                } else {
                    None
                }
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let edge = candidates[rng.gen_range(0..candidates.len())];
        let new_table = if tables.contains(&edge.child) {
            edge.parent
        } else {
            edge.child
        };
        tables.push(new_table);
        joins.push(edge);
    }
    (tables, joins)
}

/// Draw up to `n_preds` random predicates on non-PK columns of `tables`,
/// with literal quantiles restricted to `[rank_lo, rank_hi]`.
fn random_predicates(
    db: &Database,
    tables: &[TableId],
    n_preds: usize,
    rng: &mut SmallRng,
    rank_lo: f64,
    rank_hi: f64,
) -> Vec<Predicate> {
    // Candidate columns: attributes only (not PK, not FK) so predicates
    // don't fight the join conditions.
    let mut candidates: Vec<ColumnId> = Vec::new();
    for &t in tables {
        let tdef = db.schema.table(t);
        for (ci, cdef) in tdef.columns.iter().enumerate().skip(1) {
            if !matches!(cdef.distribution, Distribution::ForeignKey { .. }) {
                candidates.push(ColumnId::new(t, ci as u32));
            }
        }
    }
    let mut predicates = Vec::new();
    for _ in 0..n_preds {
        if candidates.is_empty() {
            break;
        }
        let column = candidates.swap_remove(rng.gen_range(0..candidates.len()));
        let stats = db.column_stats(column);
        if stats.n_distinct < 1.0 {
            continue;
        }
        let col_type = db.schema.column(column).col_type;
        let q = rng.gen_range(rank_lo..=rank_hi);
        let op = random_op(col_type, rng);
        let values = match op {
            CmpOp::Between | CmpOp::LikePrefix => {
                let q2 = (q + rng.gen_range(0.02..0.3)).min(1.0);
                vec![stats.value_at_rank(q), stats.value_at_rank(q2)]
            }
            CmpOp::In => {
                let k = rng.gen_range(2..=5);
                let mut vals: Vec<i64> = (0..k)
                    .map(|_| stats.value_at_rank(rng.gen_range(rank_lo..=rank_hi)))
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals
            }
            _ => vec![stats.value_at_rank(q)],
        };
        predicates.push(Predicate { column, op, values });
    }
    predicates
}

/// Pick a grouped or plain aggregation over the query's tables.
fn random_aggregation(
    db: &Database,
    tables: &[TableId],
    rng: &mut SmallRng,
) -> (Option<ColumnId>, Vec<Aggregate>) {
    // Numeric attribute columns are aggregation candidates.
    let mut numeric: Vec<ColumnId> = Vec::new();
    let mut categorical: Vec<ColumnId> = Vec::new();
    for &t in tables {
        let tdef = db.schema.table(t);
        for (ci, cdef) in tdef.columns.iter().enumerate().skip(1) {
            if matches!(cdef.distribution, Distribution::ForeignKey { .. }) {
                continue;
            }
            let id = ColumnId::new(t, ci as u32);
            match cdef.col_type {
                ColumnType::Int | ColumnType::Float => numeric.push(id),
                ColumnType::Text | ColumnType::Bool | ColumnType::Date => categorical.push(id),
            }
        }
    }
    let agg = match (numeric.is_empty(), rng.gen_range(0..5u32)) {
        (false, 0) => Aggregate::Sum(*pick(&numeric, rng)),
        (false, 1) => Aggregate::Avg(*pick(&numeric, rng)),
        (false, 2) => Aggregate::Min(*pick(&numeric, rng)),
        (false, 3) => Aggregate::Max(*pick(&numeric, rng)),
        _ => Aggregate::CountStar,
    };
    let group_by = if !categorical.is_empty() && rng.gen_bool(0.5) {
        Some(*pick(&categorical, rng))
    } else {
        None
    };
    (group_by, vec![agg])
}

fn random_op(col_type: ColumnType, rng: &mut SmallRng) -> CmpOp {
    match col_type {
        ColumnType::Text => *pick(&[CmpOp::Eq, CmpOp::In, CmpOp::LikePrefix], rng),
        ColumnType::Bool => CmpOp::Eq,
        _ => *pick(
            &[
                CmpOp::Eq,
                CmpOp::Lt,
                CmpOp::Gt,
                CmpOp::Le,
                CmpOp::Ge,
                CmpOp::Between,
                CmpOp::In,
            ],
            rng,
        ),
    }
}

fn pick<'a, T>(xs: &'a [T], rng: &mut SmallRng) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_catalog::{generate_database, suite_specs};

    fn small_db(idx: usize) -> Database {
        generate_database(&suite_specs()[idx], 0.01)
    }

    #[test]
    fn complex_workload_queries_are_connected_and_valid() {
        let db = small_db(0);
        let queries = ComplexWorkloadGen::default().generate(&db, 200);
        assert_eq!(queries.len(), 200);
        let mut saw_join = false;
        let mut saw_pred = false;
        for q in &queries {
            assert!(q.is_connected(), "disconnected query");
            assert_eq!(q.tables.len(), q.joins.len() + 1);
            saw_join |= !q.joins.is_empty();
            saw_pred |= !q.predicates.is_empty();
            // No duplicate tables (no self-joins).
            let mut t = q.tables.clone();
            t.sort();
            t.dedup();
            assert_eq!(t.len(), q.tables.len());
            for p in &q.predicates {
                assert!(q.tables.contains(&p.column.table()));
                assert!(!p.values.is_empty());
            }
        }
        assert!(saw_join && saw_pred);
    }

    #[test]
    fn generation_is_deterministic() {
        let db = small_db(1);
        let a = ComplexWorkloadGen::default().generate(&db, 50);
        let b = ComplexWorkloadGen::default().generate(&db, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn mscn_sets_have_expected_shapes() {
        let db = small_db(0);
        let gen = MscnWorkloadGen::default();
        let train = gen.gen_train(&db, 300);
        assert!(train.iter().all(|q| q.join_count() <= 2));
        let scale = gen.gen_test(&db, MscnSet::Scale, 100);
        assert!(scale.iter().any(|q| q.join_count() > 2));
        let job = gen.gen_test(&db, MscnSet::JobLight, 70);
        assert_eq!(job.len(), 70);
        for q in &job {
            // Star joins: every join's child is the fact table.
            assert!(q.joins.iter().all(|j| j.child == TableId(0)));
            assert!(q.is_connected());
        }
    }

    #[test]
    fn synthetic_set_restricts_literal_ranks() {
        let db = small_db(0);
        let gen = MscnWorkloadGen::default();
        let synthetic = gen.gen_test(&db, MscnSet::Synthetic, 200);
        // All synthetic-set literals come from the restricted quantile band;
        // verify they avoid the extreme tails for ranked columns.
        for q in &synthetic {
            assert!(q.join_count() <= 2);
            assert!(!q.predicates.is_empty());
        }
    }

    #[test]
    fn default_counts_match_paper() {
        assert_eq!(MscnSet::Synthetic.default_count(), 5_000);
        assert_eq!(MscnSet::Scale.default_count(), 500);
        assert_eq!(MscnSet::JobLight.default_count(), 70);
    }
}
