//! Online adaptation: the observe → retrain → swap loop.
//!
//! The paper's deployment story ends at "fine-tune a LoRA adapter offline
//! and install it"; this module closes the loop so a *serving* estimator
//! notices its own drift and repairs itself without an operator:
//!
//! 1. **Observe** — callers feed `(plan, prediction, observed_ms)` back
//!    through [`AdaptiveController::observe`]. Samples land in a bounded
//!    [`FeedbackBuffer`] (ticket-CAS ring, drop-newest, counted drops — the
//!    feedback path must never stall the caller) and their q-errors stream
//!    into a [`DriftDetector`].
//! 2. **Detect** — the detector freezes a baseline q-error quantile over a
//!    warmup window, then watches a sliding window of recent q-errors; when
//!    the window quantile exceeds `baseline × ratio` it trips.
//! 3. **Retrain** — a trip spawns one background thread (an `AtomicBool`
//!    latch guarantees at most one in flight) that drains the buffer,
//!    splits it deterministically into train/holdback slices, and LoRA
//!    fine-tunes a **clone** of the serving model
//!    ([`DaceEstimator::fine_tuned_clone`] — the serving weights are never
//!    mutated in place).
//! 4. **Shadow-eval + swap** — the candidate is scored against the current
//!    model on the held-back slice; it is promoted through the
//!    [`ModelRegistry`] only if its q-error quantile is no worse. Promotion
//!    optionally round-trips a crash-safe checkpoint
//!    (`save_checkpoint` → [`ModelRegistry::swap_base_from_checkpoint`]),
//!    so a corrupt artifact is caught by the loader and last-good keeps
//!    serving.
//! 5. **Probation + rollback** — after a swap the previous version is
//!    retained as *last-good*; if live q-errors over a probation window
//!    regress past what shadow eval promised, the controller swaps
//!    last-good straight back and re-arms.
//!
//! Every decision increments an `adaptive_*` counter in the shared
//! [`MetricsRegistry`] and runs under a flight-recorder span, so a chaos
//! run's report can assert exactly how many retrains / promotions /
//! rollbacks happened. Fault injection reuses the serve-path
//! [`FaultInjector`]: [`FaultSite::RetrainCrash`] panics the retrain thread
//! mid-flight (the latch must recover), [`FaultSite::CandidateSabotage`]
//! corrupts the candidate before shadow eval (rollback must fire), and
//! [`FaultSite::CheckpointCorrupt`] flips bytes in the promotion checkpoint
//! (the reload path must reject it).
//!
//! The whole loop is **caller-side**: `observe` runs after a response is
//! already delivered, so the serve hot path is untouched — faults-off
//! serving throughput is unchanged.
//!
//! [`FaultSite::RetrainCrash`]: crate::FaultSite::RetrainCrash
//! [`FaultSite::CandidateSabotage`]: crate::FaultSite::CandidateSabotage
//! [`FaultSite::CheckpointCorrupt`]: crate::FaultSite::CheckpointCorrupt
//! [`DaceEstimator::fine_tuned_clone`]: dace_core::DaceEstimator::fine_tuned_clone

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use dace_core::{quantile, save_checkpoint};
use dace_obs::{current_trace, span, trace_scope, Counter, LifecycleEvent, MetricsRegistry};
use dace_plan::{Dataset, LabeledPlan, MachineId, PlanTree};

use crate::fault::{FaultConfig, FaultInjector, FaultSite, INJECTED_PANIC};
use crate::health::HealthPlane;
use crate::metrics::Histogram;
use crate::registry::{ModelRegistry, ModelVersion};
use crate::scheduler::{Prediction, FALLBACK_VERSION};
use crate::supervisor::lock_recover;

/// Q-error of a prediction against an observation (both clamped away from
/// zero so the ratio is always finite and ≥ 1).
#[inline]
pub fn q_error(predicted_ms: f64, observed_ms: f64) -> f64 {
    let p = predicted_ms.max(1e-6);
    let a = observed_ms.max(1e-6);
    (p / a).max(a / p)
}

// ---------------------------------------------------------------------------
// Feedback buffer
// ---------------------------------------------------------------------------

/// One observed execution fed back into the adaptive loop.
#[derive(Debug, Clone)]
pub struct FeedbackSample {
    /// Structural fingerprint under the serving featurizer (dedup/debug key).
    pub fingerprint: u64,
    /// What the model answered.
    pub predicted_ms: f64,
    /// What the engine actually measured.
    pub observed_ms: f64,
    /// `q_error(predicted_ms, observed_ms)`, precomputed at observe time.
    pub q_error: f64,
    /// The plan relabeled so its actual-latency labels sum to the
    /// observation — the unit of retraining data.
    pub plan: LabeledPlan,
}

/// Slot protocol (mirrors the obs flight recorder): `seq == ticket + 1`
/// publishes the slot; the payload mutex is uncontended by construction —
/// only the ticket holder writes it, only a drainer that saw `seq` reads it.
#[derive(Debug)]
struct SampleSlot {
    seq: AtomicU64,
    sample: Mutex<Option<FeedbackSample>>,
}

/// Bounded MPSC feedback ring: producers claim a slot with a ticket CAS and
/// never block or wait on readers; when full the sample is **dropped and
/// counted** (feedback must never stall the caller it observes). Draining
/// serializes consumers on a mutex producers never touch.
#[derive(Debug)]
pub struct FeedbackBuffer {
    slots: Box<[SampleSlot]>,
    /// Next ticket to hand out (monotone).
    head: AtomicU64,
    /// Next unconsumed ticket (monotone, advanced only under `drain`).
    tail: AtomicU64,
    dropped: AtomicU64,
    drain: Mutex<()>,
}

impl FeedbackBuffer {
    /// A ring holding up to `capacity` samples (rounded up to 1).
    pub fn with_capacity(capacity: usize) -> FeedbackBuffer {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| SampleSlot {
                seq: AtomicU64::new(0),
                sample: Mutex::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FeedbackBuffer {
            slots,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drain: Mutex::new(()),
        }
    }

    /// Publish one sample. Returns `false` (and counts the drop) when the
    /// ring is full.
    pub fn push(&self, sample: FeedbackSample) -> bool {
        let cap = self.slots.len() as u64;
        loop {
            let h = self.head.load(Ordering::Acquire);
            if h.wrapping_sub(self.tail.load(Ordering::Acquire)) >= cap {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if self
                .head
                .compare_exchange_weak(h, h + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let slot = &self.slots[(h % cap) as usize];
                *lock_recover(&slot.sample) = Some(sample);
                // Publish: drainers accept the slot only at seq == ticket+1.
                slot.seq.store(h + 1, Ordering::Release);
                return true;
            }
        }
    }

    /// Drain every fully published sample, oldest first. An in-flight write
    /// at the frontier ends the drain early; it surfaces next time.
    pub fn drain(&self) -> Vec<FeedbackSample> {
        let cap = self.slots.len() as u64;
        let _g = lock_recover(&self.drain);
        let mut out = Vec::new();
        loop {
            let t = self.tail.load(Ordering::Acquire);
            if t == self.head.load(Ordering::Acquire) {
                break;
            }
            let slot = &self.slots[(t % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != t + 1 {
                break; // producer claimed but not yet published
            }
            let sample = lock_recover(&slot.sample).take();
            self.tail.store(t + 1, Ordering::Release);
            if let Some(s) = sample {
                out.push(s);
            }
        }
        out
    }

    /// Samples currently buffered (racy, advisory).
    pub fn len(&self) -> usize {
        let h = self.head.load(Ordering::Acquire);
        let t = self.tail.load(Ordering::Acquire);
        h.wrapping_sub(t) as usize
    }

    /// True when nothing is buffered (racy, advisory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

// ---------------------------------------------------------------------------
// Drift detector
// ---------------------------------------------------------------------------

/// Tuning knobs for the [`DriftDetector`]. Deterministic: the same q-error
/// sequence always produces the same trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Warmup samples used to freeze the baseline quantile.
    pub min_samples: usize,
    /// Sliding-window length; the detector only checks a **full** window.
    pub window: usize,
    /// Which q-error quantile to watch (e.g. `0.9`).
    pub quantile: f64,
    /// Trip when `window_q > baseline_q × ratio`.
    pub ratio: f64,
    /// Amortization: recompute the window quantile every N pushes.
    pub check_every: usize,
    /// Samples ignored after a trip before the detector re-arms (gives the
    /// retrain loop time to act instead of re-tripping on the same drift).
    pub cooldown: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            min_samples: 256,
            window: 256,
            quantile: 0.9,
            ratio: 1.5,
            check_every: 32,
            cooldown: 512,
        }
    }
}

/// What the detector saw when it tripped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftTrip {
    /// The frozen warmup quantile.
    pub baseline_q: f64,
    /// The sliding-window quantile that exceeded it.
    pub window_q: f64,
    /// Total samples pushed when the trip fired.
    pub samples_seen: u64,
}

/// Sliding-window drift detector over q-error quantiles.
///
/// Warmup freezes a baseline quantile; afterwards a full window whose
/// quantile exceeds `baseline × ratio` trips the detector, which then
/// clears its window and holds its fire for `cooldown` samples. Standalone
/// and purely deterministic so property tests can drive it directly.
#[derive(Debug)]
pub struct DriftDetector {
    config: DriftConfig,
    baseline: Option<f64>,
    warmup: Vec<f64>,
    window: VecDeque<f64>,
    scratch: Vec<f64>,
    since_check: usize,
    cooldown_left: usize,
    samples_seen: u64,
}

impl DriftDetector {
    /// A detector with `config` (zero-valued knobs are clamped to 1).
    pub fn new(config: DriftConfig) -> DriftDetector {
        let config = DriftConfig {
            min_samples: config.min_samples.max(1),
            window: config.window.max(1),
            quantile: config.quantile.clamp(0.01, 1.0),
            ratio: config.ratio.max(1.0),
            check_every: config.check_every.max(1),
            cooldown: config.cooldown,
        };
        DriftDetector {
            config,
            baseline: None,
            warmup: Vec::with_capacity(config.min_samples),
            window: VecDeque::with_capacity(config.window),
            scratch: Vec::new(),
            since_check: 0,
            cooldown_left: 0,
            samples_seen: 0,
        }
    }

    /// The frozen baseline quantile, once warmup completed.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Total samples pushed (including warmup and ignored ones).
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Feed one q-error; returns a trip when drift is declared. Non-finite
    /// or non-positive inputs are ignored.
    pub fn push(&mut self, q: f64) -> Option<DriftTrip> {
        if !q.is_finite() || q <= 0.0 {
            return None;
        }
        self.samples_seen += 1;
        let Some(baseline) = self.baseline else {
            self.warmup.push(q);
            if self.warmup.len() >= self.config.min_samples {
                self.scratch.clear();
                self.scratch.extend_from_slice(&self.warmup);
                self.baseline = quantile(&mut self.scratch, self.config.quantile);
                self.warmup.clear();
            }
            return None;
        };
        if self.window.len() == self.config.window {
            self.window.pop_front();
        }
        self.window.push_back(q);
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }
        self.since_check += 1;
        if self.since_check < self.config.check_every || self.window.len() < self.config.window {
            return None;
        }
        self.since_check = 0;
        self.scratch.clear();
        self.scratch.extend(self.window.iter().copied());
        let window_q = quantile(&mut self.scratch, self.config.quantile)?;
        if window_q > baseline * self.config.ratio {
            self.window.clear();
            self.cooldown_left = self.config.cooldown;
            return Some(DriftTrip {
                baseline_q: baseline,
                window_q,
                samples_seen: self.samples_seen,
            });
        }
        None
    }

    /// Forget everything and re-learn a baseline — called after a model
    /// swap, because the old baseline describes the old model.
    pub fn rebaseline(&mut self) {
        self.baseline = None;
        self.warmup.clear();
        self.window.clear();
        self.since_check = 0;
        self.cooldown_left = 0;
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Counters for every adaptive-loop decision, registered in the shared
/// [`MetricsRegistry`] under `adaptive_*` names.
#[derive(Debug, Clone)]
pub struct AdaptiveMetrics {
    /// Model-path samples ingested.
    pub samples: Arc<Counter>,
    /// Samples dropped because the feedback ring was full.
    pub samples_dropped: Arc<Counter>,
    /// Samples rejected because the answer was degraded (fallback path) —
    /// heuristic answers must never count as model observations.
    pub samples_rejected_degraded: Arc<Counter>,
    /// Drift-detector trips.
    pub drift_trips: Arc<Counter>,
    /// Background retrains spawned.
    pub retrains_started: Arc<Counter>,
    /// Retrains whose candidate was promoted.
    pub retrains_succeeded: Arc<Counter>,
    /// Retrains that died (panic, train error, too few samples, bad
    /// checkpoint) — last-good kept serving throughout.
    pub retrains_failed: Arc<Counter>,
    /// Candidates rejected by shadow eval (never promoted).
    pub retrains_rolled_back: Arc<Counter>,
    /// Successful registry swaps to a retrained candidate.
    pub promotions: Arc<Counter>,
    /// Post-promotion probation reverts back to last-good.
    pub rollbacks: Arc<Counter>,
    /// Wall time of each retrain attempt (µs).
    pub retrain_us: Arc<Histogram>,
}

impl AdaptiveMetrics {
    /// Create (or re-attach to) the adaptive counters in `registry`.
    pub fn register(registry: &MetricsRegistry) -> AdaptiveMetrics {
        AdaptiveMetrics {
            samples: registry.counter("adaptive_samples_total"),
            samples_dropped: registry.counter("adaptive_samples_dropped_total"),
            samples_rejected_degraded: registry.counter("adaptive_samples_rejected_degraded_total"),
            drift_trips: registry.counter("adaptive_drift_trips_total"),
            retrains_started: registry.counter("adaptive_retrains_started_total"),
            retrains_succeeded: registry.counter("adaptive_retrains_succeeded_total"),
            retrains_failed: registry.counter("adaptive_retrains_failed_total"),
            retrains_rolled_back: registry.counter("adaptive_retrains_rolled_back_total"),
            promotions: registry.counter("adaptive_promotions_total"),
            rollbacks: registry.counter("adaptive_rollbacks_total"),
            retrain_us: registry.histogram("adaptive_retrain_us"),
        }
    }
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// Tuning knobs for the [`AdaptiveController`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Feedback ring capacity.
    pub buffer_capacity: usize,
    /// Drift-detector knobs.
    pub drift: DriftConfig,
    /// LoRA fine-tune epochs per retrain.
    pub retrain_epochs: usize,
    /// LoRA fine-tune learning rate.
    pub retrain_lr: f32,
    /// Fraction of drained samples held back for shadow eval (clamped to
    /// `[0.05, 0.5]`; the split is deterministic by sample index).
    pub holdback_fraction: f64,
    /// Skip the retrain entirely with fewer drained samples than this.
    pub min_retrain_samples: usize,
    /// Retrain on at most the newest this-many drained samples. The drain
    /// hands back everything since the last retrain — including pre-drift
    /// samples whose labels contradict the regime that tripped the detector.
    /// Capping to the newest window keeps the fine-tune set inside the new
    /// regime instead of fitting the geometric middle of both.
    pub retrain_window: usize,
    /// Q-error quantile compared in shadow eval and probation.
    pub shadow_quantile: f64,
    /// Promote only if `candidate_q ≤ current_q × promote_margin`.
    pub promote_margin: f64,
    /// Live samples collected after a promotion before the probation
    /// verdict.
    pub probation_samples: usize,
    /// Roll back if the probation quantile exceeds
    /// `shadow_candidate_q × probation_margin` (live traffic is noisier
    /// than the holdback slice, so this is deliberately generous).
    pub probation_margin: f64,
    /// When set, promotion round-trips a crash-safe checkpoint in this
    /// directory (`save_checkpoint` → load → swap), so the artifact the
    /// registry installs is the artifact that survives a crash.
    pub checkpoint_dir: Option<PathBuf>,
    /// Database id this controller's observations are attributed to in the
    /// accuracy ledger (one controller observes one database's traffic;
    /// multi-database deployments run one per db).
    pub db_id: u16,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            buffer_capacity: 8192,
            drift: DriftConfig::default(),
            retrain_epochs: 20,
            retrain_lr: 2e-3,
            holdback_fraction: 0.25,
            min_retrain_samples: 64,
            retrain_window: 1024,
            shadow_quantile: 0.9,
            promote_margin: 1.0,
            probation_samples: 256,
            probation_margin: 2.0,
            checkpoint_dir: None,
            db_id: 0,
        }
    }
}

/// Post-promotion watch: live q-errors from the promoted version, judged
/// against what shadow eval promised.
#[derive(Debug)]
struct Probation {
    qs: Vec<f64>,
    limit_q: f64,
    /// Only samples answered by this version (or later) count.
    min_version: u64,
}

/// The adaptive loop's hub. Create once per server (wrap in `Arc`), call
/// [`observe`](AdaptiveController::observe) with every completed request
/// whose actual latency is known, and the loop handles the rest in the
/// background.
#[derive(Debug)]
pub struct AdaptiveController {
    registry: Arc<ModelRegistry>,
    config: AdaptiveConfig,
    buffer: FeedbackBuffer,
    detector: Mutex<DriftDetector>,
    probation: Mutex<Option<Probation>>,
    /// The version serving before the last promotion; probation's rollback
    /// target.
    last_good: Mutex<Option<Arc<ModelVersion>>>,
    metrics: AdaptiveMetrics,
    injector: Arc<FaultInjector>,
    /// At most one background retrain in flight.
    inflight: AtomicBool,
    retrain_handle: Mutex<Option<JoinHandle<()>>>,
    /// The health plane, once attached via
    /// [`set_health`](AdaptiveController::set_health): lifecycle journal,
    /// accuracy ledger, SLO alerts. Absent, the loop runs exactly as
    /// before (counters + spans only).
    health: OnceLock<Arc<HealthPlane>>,
    /// Trace id of the request whose q-error tripped the drift detector —
    /// the causal anchor the retrain thread (and everything it journals or
    /// trains) is stamped with.
    last_trip_trace: AtomicU64,
}

impl AdaptiveController {
    /// A controller over `registry`, metering into `metrics`, with no fault
    /// injection.
    pub fn new(
        registry: Arc<ModelRegistry>,
        metrics: &MetricsRegistry,
        config: AdaptiveConfig,
    ) -> Arc<AdaptiveController> {
        Self::with_faults(
            registry,
            metrics,
            config,
            Arc::new(FaultInjector::new(FaultConfig::disabled())),
        )
    }

    /// A controller whose retrain path rolls against `injector` — the chaos
    /// harness's entry point ([`FaultSite::RetrainCrash`],
    /// [`FaultSite::CandidateSabotage`], [`FaultSite::CheckpointCorrupt`]).
    pub fn with_faults(
        registry: Arc<ModelRegistry>,
        metrics: &MetricsRegistry,
        config: AdaptiveConfig,
        injector: Arc<FaultInjector>,
    ) -> Arc<AdaptiveController> {
        Arc::new(AdaptiveController {
            buffer: FeedbackBuffer::with_capacity(config.buffer_capacity),
            detector: Mutex::new(DriftDetector::new(config.drift)),
            probation: Mutex::new(None),
            last_good: Mutex::new(None),
            metrics: AdaptiveMetrics::register(metrics),
            injector,
            inflight: AtomicBool::new(false),
            retrain_handle: Mutex::new(None),
            health: OnceLock::new(),
            last_trip_trace: AtomicU64::new(0),
            registry,
            config,
        })
    }

    /// Attach the server's health plane: lifecycle decisions journal
    /// through it, accuracy observations feed its ledger and SLOs, and the
    /// feedback ring's drop counter is exported as a gauge in `registry`.
    /// Attach once, before traffic; later calls are ignored.
    ///
    /// The drop gauge captures a `Weak` back-reference — the plane outlives
    /// servers and controllers, so a strong cycle here would leak both.
    pub fn set_health(self: &Arc<Self>, plane: Arc<HealthPlane>, registry: &MetricsRegistry) {
        let weak = Arc::downgrade(self);
        plane.register_drop_gauge(
            registry,
            "adaptive_feedback_ring_dropped",
            "Feedback samples dropped because the adaptive ring was full.",
            move || weak.upgrade().map_or(0, |c| c.buffer.dropped()),
        );
        let _ = self.health.set(plane);
    }

    /// Journal a lifecycle event, when a health plane is attached.
    fn emit(&self, trace: u64, event: LifecycleEvent) {
        if let Some(h) = self.health.get() {
            h.emit(trace, event);
        }
    }

    /// The adaptive counters (shared with the registry passed at build).
    pub fn metrics(&self) -> &AdaptiveMetrics {
        &self.metrics
    }

    /// The feedback ring (len/dropped introspection for benches and tests).
    pub fn buffer(&self) -> &FeedbackBuffer {
        &self.buffer
    }

    /// The frozen drift baseline, if warmup completed.
    pub fn drift_baseline(&self) -> Option<f64> {
        lock_recover(&self.detector).baseline()
    }

    /// True while a background retrain is running.
    pub fn retrain_inflight(&self) -> bool {
        self.inflight.load(Ordering::Acquire)
    }

    /// Feed one completed request back into the loop.
    ///
    /// Degraded answers (fallback path, stamped [`FALLBACK_VERSION`]) are
    /// rejected and counted — a heuristic's error says nothing about the
    /// model. Everything here is caller-side and bounded: a tree clone +
    /// relabel for the buffer, one mutex-guarded detector push, and (rarely)
    /// a thread spawn; the serve hot path itself is untouched.
    pub fn observe(self: &Arc<Self>, tree: &PlanTree, pred: &Prediction, observed_ms: f64) {
        if pred.degraded || pred.version == FALLBACK_VERSION {
            self.metrics.samples_rejected_degraded.inc();
            return;
        }
        if !observed_ms.is_finite() || observed_ms <= 0.0 || !pred.ms.is_finite() {
            return;
        }
        let q = q_error(pred.ms, observed_ms);
        self.metrics.samples.inc();
        // Accuracy accounting: the (version, db) sketch plus the q-error
        // SLO, both keyed by the version that actually answered.
        if let Some(h) = self.health.get() {
            h.observe_qerr(pred.version, u32::from(self.config.db_id), q, pred.trace);
        }
        self.probation_observe(q, pred.version);
        let base = self.registry.base();
        let sample = FeedbackSample {
            fingerprint: base.estimator.featurizer.fingerprint(tree),
            predicted_ms: pred.ms,
            observed_ms,
            q_error: q,
            plan: LabeledPlan {
                tree: relabel(tree, observed_ms),
                db_id: self.config.db_id,
                machine: MachineId::M1,
            },
        };
        if !self.buffer.push(sample) {
            self.metrics.samples_dropped.inc();
        }
        let trip = lock_recover(&self.detector).push(q);
        if let Some(t) = trip {
            self.metrics.drift_trips.inc();
            // The tripping request's trace anchors the whole lineage:
            // DriftTripped → RetrainStarted → … → SwapPromoted all carry it,
            // as do the retrain thread's spans and epoch records.
            self.last_trip_trace.store(pred.trace, Ordering::Release);
            self.emit(
                pred.trace,
                LifecycleEvent::DriftTripped {
                    baseline_q: t.baseline_q,
                    window_q: t.window_q,
                    samples: t.samples_seen,
                },
            );
            self.maybe_spawn_retrain();
        }
    }

    /// Block until any in-flight retrain finishes (test/bench hook; the
    /// serving path never calls this).
    pub fn join(&self) {
        let handle = lock_recover(&self.retrain_handle).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn maybe_spawn_retrain(self: &Arc<Self>) {
        if self.inflight.swap(true, Ordering::AcqRel) {
            return; // one retrain at a time; the next trip re-triggers
        }
        self.metrics.retrains_started.inc();
        let this = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("dace-adaptive-retrain".into())
            .spawn(move || {
                // The retrain thread inherits the tripping request's trace:
                // every span, journal record and training epoch it produces
                // joins that request's causal chain.
                let trip_trace = this.last_trip_trace.load(Ordering::Acquire);
                let _trace = trace_scope(trip_trace);
                let t0 = Instant::now();
                // An injected (or real) mid-retrain panic must not wedge the
                // latch: catch it, count it, release.
                let result = catch_unwind(AssertUnwindSafe(|| this.retrain_once()));
                this.metrics
                    .retrain_us
                    .record(t0.elapsed().as_micros() as u64);
                if result.is_err() {
                    this.metrics.retrains_failed.inc();
                    this.emit(
                        trip_trace,
                        LifecycleEvent::RetrainFailed {
                            reason: "retrain thread panicked".to_string(),
                        },
                    );
                }
                this.inflight.store(false, Ordering::Release);
            })
            .expect("spawn adaptive retrain thread");
        *lock_recover(&self.retrain_handle) = Some(handle);
    }

    /// One full retrain attempt: drain → split → fine-tune → shadow eval →
    /// promote or discard. Runs on the background thread under
    /// `catch_unwind`.
    fn retrain_once(&self) {
        let _span = span!("adaptive_retrain");
        let mut samples = self.buffer.drain();
        self.emit(
            current_trace(),
            LifecycleEvent::RetrainStarted {
                samples: samples.len() as u64,
            },
        );
        if samples.len() < self.config.min_retrain_samples.max(2) {
            self.metrics.retrains_failed.inc();
            self.emit(
                current_trace(),
                LifecycleEvent::RetrainFailed {
                    reason: format!("only {} samples drained", samples.len()),
                },
            );
            return;
        }
        let keep = self.config.retrain_window.max(2);
        if samples.len() > keep {
            samples.drain(..samples.len() - keep);
        }
        // Deterministic split: every stride-th sample is held back for
        // shadow eval, the rest retrain. Index-based so a replayed run
        // splits identically.
        let stride = (1.0 / self.config.holdback_fraction.clamp(0.05, 0.5)).round() as usize;
        let mut train = Dataset::new();
        let mut holdback = Vec::new();
        for (i, s) in samples.into_iter().enumerate() {
            if i % stride == 0 {
                holdback.push(s);
            } else {
                train.plans.push(s.plan);
            }
        }
        if train.is_empty() || holdback.is_empty() {
            self.metrics.retrains_failed.inc();
            self.emit(
                current_trace(),
                LifecycleEvent::RetrainFailed {
                    reason: "train/holdback split left one side empty".to_string(),
                },
            );
            return;
        }
        if self.injector.should_fire(FaultSite::RetrainCrash) {
            panic!("{INJECTED_PANIC}: retrain crash (site RetrainCrash)");
        }
        let base = self.registry.base();
        let mut candidate = match base.estimator.fine_tuned_clone(
            &train,
            self.config.retrain_epochs,
            self.config.retrain_lr,
        ) {
            Ok(c) => c,
            Err(e) => {
                self.metrics.retrains_failed.inc();
                self.emit(
                    current_trace(),
                    LifecycleEvent::RetrainFailed {
                        reason: format!("fine-tune failed: {e:?}"),
                    },
                );
                return;
            }
        };
        if self.injector.should_fire(FaultSite::CandidateSabotage) {
            // Deterministic sabotage through the public API: one fine-tune
            // step at an absurd learning rate turns the adapter to garbage.
            // Shadow eval must catch this — the whole point of the site.
            let _ = candidate.fine_tune_lora(&train, 1, 1e9);
        }
        let (cand_q, curr_q) = {
            let _span = span!("adaptive_shadow_eval");
            (
                shadow_q(&candidate, &holdback, self.config.shadow_quantile),
                shadow_q(&base.estimator, &holdback, self.config.shadow_quantile),
            )
        };
        let limit = curr_q * self.config.promote_margin;
        if cand_q.is_finite() && cand_q <= limit {
            self.promote(candidate, cand_q);
        } else {
            // Candidate rejected: nothing was ever swapped, last-good (the
            // current model) keeps serving.
            let _span = span!("adaptive_rollback");
            self.metrics.retrains_rolled_back.inc();
            self.emit(
                current_trace(),
                LifecycleEvent::RetrainRejected {
                    candidate_q: cand_q,
                    current_q: curr_q,
                },
            );
        }
    }

    /// Swap the candidate in (optionally via a crash-safe checkpoint
    /// round-trip) and open a probation window.
    fn promote(&self, candidate: dace_core::DaceEstimator, cand_q: f64) {
        let _span = span!("adaptive_promote");
        let prev = self.registry.base();
        let from_version = prev.version;
        *lock_recover(&self.last_good) = Some(prev);
        let swapped = if let Some(dir) = &self.config.checkpoint_dir {
            let path = dir.join("adaptive-candidate.ckpt");
            if save_checkpoint(&path, &candidate).is_err() {
                self.metrics.retrains_failed.inc();
                self.emit(
                    current_trace(),
                    LifecycleEvent::RetrainFailed {
                        reason: "promotion checkpoint save failed".to_string(),
                    },
                );
                return;
            }
            if self.injector.should_fire(FaultSite::CheckpointCorrupt) {
                corrupt_file(&path);
            }
            // The loader verifies magic + checksum; a corrupt artifact is
            // rejected here and last-good never stops serving.
            self.registry.swap_base_from_checkpoint(&path).map_err(|e| {
                self.emit(
                    current_trace(),
                    LifecycleEvent::CheckpointRejected {
                        reason: e.to_string(),
                    },
                );
            })
        } else {
            self.registry.swap_base(candidate).map_err(|_| ())
        };
        let new_version = match swapped {
            Ok(v) => v,
            Err(()) => {
                self.metrics.retrains_failed.inc();
                return;
            }
        };
        self.metrics.retrains_succeeded.inc();
        self.metrics.promotions.inc();
        self.emit(
            current_trace(),
            LifecycleEvent::SwapPromoted {
                from: from_version,
                to: new_version,
                trigger: "drift".to_string(),
                shadow_p90: cand_q,
            },
        );
        *lock_recover(&self.probation) = Some(Probation {
            qs: Vec::with_capacity(self.config.probation_samples),
            limit_q: (cand_q * self.config.probation_margin).max(1.0),
            min_version: new_version,
        });
        // The old baseline describes the old model; re-learn.
        lock_recover(&self.detector).rebaseline();
    }

    /// Feed a live q-error into an open probation window; when the window
    /// fills, deliver the verdict: keep the promotion, or swap last-good
    /// straight back.
    fn probation_observe(self: &Arc<Self>, q: f64, version: u64) {
        let verdict = {
            let mut guard = lock_recover(&self.probation);
            let Some(p) = guard.as_mut() else { return };
            if version < p.min_version {
                return; // answered by a pre-promotion snapshot
            }
            p.qs.push(q);
            if p.qs.len() < self.config.probation_samples.max(1) {
                return;
            }
            let p = guard.take().expect("probation present");
            let min_version = p.min_version;
            let mut qs = p.qs;
            let live_q = quantile(&mut qs, self.config.shadow_quantile).unwrap_or(f64::INFINITY);
            (live_q, p.limit_q, min_version)
        };
        let (live_q, limit_q, probed_version) = verdict;
        let trace = self.last_trip_trace.load(Ordering::Acquire);
        let last = lock_recover(&self.last_good).take();
        if live_q.is_finite() && live_q <= limit_q {
            // Promotion confirmed; last-good no longer needed.
            self.emit(
                trace,
                LifecycleEvent::ProbationPassed {
                    version: probed_version,
                    q_p90: live_q,
                },
            );
            return;
        }
        if let Some(lg) = last {
            let _span = span!("adaptive_rollback");
            if self.registry.swap_base(lg.estimator.clone()).is_ok() {
                self.metrics.rollbacks.inc();
                lock_recover(&self.detector).rebaseline();
                self.emit(
                    trace,
                    LifecycleEvent::RollbackFired {
                        from: probed_version,
                        to: lg.version,
                        q_p90: live_q,
                        limit: limit_q,
                    },
                );
            }
        }
    }
}

/// Q-error quantile of `est` over the held-back samples.
fn shadow_q(est: &dace_core::DaceEstimator, holdback: &[FeedbackSample], p: f64) -> f64 {
    let mut qs: Vec<f64> = holdback
        .iter()
        .map(|s| q_error(est.predict_ms(&s.plan.tree), s.observed_ms))
        .collect();
    quantile(&mut qs, p).unwrap_or(f64::INFINITY)
}

/// Clone `tree` with its actual-latency labels rescaled so the root label
/// equals the observation. Callers only observe end-to-end latency; scaling
/// preserves the tree's internal label structure (and when the tree carries
/// no labels at all, latency is apportioned by estimated cost).
fn relabel(tree: &PlanTree, observed_ms: f64) -> PlanTree {
    let mut t = tree.clone();
    let ids: Vec<_> = t.ids().collect();
    let root_actual = t.actual_ms();
    if root_actual > 0.0 {
        let scale = observed_ms / root_actual;
        for id in ids {
            let n = t.node_mut(id);
            n.actual_ms *= scale;
        }
    } else {
        let root_cost = tree.est_cost().max(1e-9);
        for id in ids {
            let n = t.node_mut(id);
            n.actual_ms = (observed_ms * (n.est_cost / root_cost).clamp(0.0, 1.0)).max(1e-6);
        }
    }
    t
}

/// Flip a byte in the middle of `path` — the CheckpointCorrupt fault's
/// effect on the promotion artifact.
fn corrupt_file(path: &std::path::Path) {
    if let Ok(mut bytes) = std::fs::read(path) {
        if !bytes.is_empty() {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            let _ = std::fs::write(path, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(q: f64) -> f64 {
        q
    }

    fn detector(min: usize, window: usize, check_every: usize) -> DriftDetector {
        DriftDetector::new(DriftConfig {
            min_samples: min,
            window,
            quantile: 0.9,
            ratio: 1.5,
            check_every,
            cooldown: 8,
        })
    }

    #[test]
    fn warmup_freezes_baseline_then_stationary_never_trips() {
        let mut d = detector(16, 16, 1);
        for _ in 0..16 {
            assert!(d.push(sample(1.2)).is_none());
        }
        assert_eq!(d.baseline(), Some(1.2));
        for _ in 0..500 {
            assert!(d.push(sample(1.2)).is_none(), "stationary stream tripped");
        }
    }

    #[test]
    fn shift_trips_once_then_cooldown_holds_fire() {
        let mut d = detector(16, 16, 1);
        for _ in 0..16 {
            d.push(1.0);
        }
        let mut trips = 0;
        for _ in 0..24 {
            if let Some(t) = d.push(4.0) {
                trips += 1;
                assert!(t.window_q >= 4.0 - 1e-9);
                assert_eq!(t.baseline_q, 1.0);
            }
        }
        // One trip at window-full, then cooldown (8) swallows the rest of
        // this short burst.
        assert_eq!(trips, 1);
    }

    #[test]
    fn rebaseline_forgets_everything() {
        let mut d = detector(4, 4, 1);
        for _ in 0..4 {
            d.push(1.0);
        }
        assert!(d.baseline().is_some());
        d.rebaseline();
        assert!(d.baseline().is_none());
        // New warmup at the drifted level: no trip, it's the new normal.
        for _ in 0..4 {
            d.push(5.0);
        }
        assert_eq!(d.baseline(), Some(5.0));
        for _ in 0..100 {
            assert!(d.push(5.0).is_none());
        }
    }

    #[test]
    fn ignores_garbage_inputs() {
        let mut d = detector(4, 4, 1);
        for _ in 0..100 {
            assert!(d.push(f64::NAN).is_none());
            assert!(d.push(f64::INFINITY).is_none());
            assert!(d.push(-1.0).is_none());
            assert!(d.push(0.0).is_none());
        }
        assert!(d.baseline().is_none(), "garbage must not feed warmup");
    }

    fn fb(q: f64) -> FeedbackSample {
        use dace_plan::{NodeType, OpPayload, PlanNode, TreeBuilder};
        let mut b = TreeBuilder::new();
        let leaf = b.leaf(PlanNode::new(NodeType::SeqScan, OpPayload::Other));
        let tree = b.finish(leaf);
        FeedbackSample {
            fingerprint: 0,
            predicted_ms: 1.0,
            observed_ms: q,
            q_error: q,
            plan: LabeledPlan {
                tree,
                db_id: 0,
                machine: MachineId::M1,
            },
        }
    }

    #[test]
    fn buffer_drops_newest_when_full_and_counts() {
        let buf = FeedbackBuffer::with_capacity(4);
        for i in 0..6 {
            buf.push(fb(i as f64 + 1.0));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 2);
        let drained = buf.drain();
        assert_eq!(drained.len(), 4);
        // Oldest first, newest dropped.
        assert_eq!(drained[0].observed_ms, 1.0);
        assert_eq!(drained[3].observed_ms, 4.0);
        assert!(buf.is_empty());
    }

    #[test]
    fn buffer_drain_then_refill_reuses_slots() {
        let buf = FeedbackBuffer::with_capacity(2);
        buf.push(fb(1.0));
        assert_eq!(buf.drain().len(), 1);
        buf.push(fb(2.0));
        buf.push(fb(3.0));
        let drained = buf.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].observed_ms, 2.0);
        assert_eq!(drained[1].observed_ms, 3.0);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let buf = Arc::new(FeedbackBuffer::with_capacity(1024));
        std::thread::scope(|s| {
            for t in 0..4 {
                let buf = Arc::clone(&buf);
                s.spawn(move || {
                    for i in 0..128 {
                        buf.push(fb((t * 1000 + i) as f64 + 1.0));
                    }
                });
            }
        });
        assert_eq!(buf.dropped(), 0);
        assert_eq!(buf.drain().len(), 4 * 128);
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert!((q_error(2.0, 8.0) - 4.0).abs() < 1e-12);
        assert!((q_error(8.0, 2.0) - 4.0).abs() < 1e-12);
        assert!(q_error(0.0, 1.0).is_finite());
        assert!(q_error(1.0, 1.0) >= 1.0);
    }

    #[test]
    fn relabel_scales_labels_to_observation() {
        use dace_plan::{NodeType, OpPayload, PlanNode, TreeBuilder};
        let mut b = TreeBuilder::new();
        let mut leaf_node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
        leaf_node.actual_ms = 2.0;
        let leaf = b.leaf(leaf_node);
        let tree = b.finish(leaf);
        let t = relabel(&tree, 10.0);
        assert!((t.actual_ms() - 10.0).abs() < 1e-9);
    }
}
