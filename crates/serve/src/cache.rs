//! Featurization cache: a sharded, bounded LRU keyed by the structural plan
//! fingerprint ([`Featurizer::fingerprint`]).
//!
//! Featurization is the serve path's dominant non-matmul cost (tree walk,
//! one-hot + scaler math, ancestor-matrix construction), and production
//! optimizer traffic is highly repetitive — the same plan shapes with
//! near-identical estimates recur constantly. The fingerprint quantizes log
//! cost/cardinality to ~1.6% resolution, so recurring plans hit without
//! storing the tree itself; the fingerprint also hashes the featurizer's
//! scaler parameters, so a base-model swap with refitted scalers can never
//! serve stale features.
//!
//! Sharding by the key's low bits keeps lock hold times to a single LRU
//! list splice; hit/miss counters are lock-free.
//!
//! [`Featurizer::fingerprint`]: dace_core::Featurizer::fingerprint

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dace_core::PlanFeatures;
use dace_obs::Counter;

const NIL: u32 = u32::MAX;

/// One shard: a classic HashMap + intrusive doubly-linked recency list over
/// a slab, O(1) for hit, insert and eviction.
#[derive(Debug)]
struct LruShard<V> {
    map: HashMap<u64, u32>,
    slots: Vec<Slot<V>>,
    head: u32,
    tail: u32,
    capacity: usize,
}

#[derive(Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: u32,
    next: u32,
}

impl<V: Clone> LruShard<V> {
    fn new(capacity: usize) -> LruShard<V> {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = (self.slots[i as usize].prev, self.slots[i as usize].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: u64) -> Option<V> {
        let i = *self.map.get(&key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i as usize].value.clone())
    }

    fn insert(&mut self, key: u64, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i as usize].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.map.len() >= self.capacity {
            // Evict the least-recently-used entry and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim as usize].key);
            victim
        } else {
            self.slots.push(Slot {
                key,
                value: value.clone(),
                prev: NIL,
                next: NIL,
            });
            let i = (self.slots.len() - 1) as u32;
            self.map.insert(key, i);
            self.push_front(i);
            return;
        };
        self.slots[i as usize].key = key;
        self.slots[i as usize].value = value;
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// Sharded bounded LRU over `u64` keys with lock-free hit/miss counters.
/// `FeatureCache` (the serve path's instantiation) stores
/// `Arc<PlanFeatures>` so hits share the tensor allocation.
#[derive(Debug)]
pub struct ShardedLruCache<V> {
    shards: Vec<Mutex<LruShard<V>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

/// Shard count (power of two; key low bits select the shard).
const SHARDS: usize = 8;

impl<V: Clone> ShardedLruCache<V> {
    /// Cache holding up to `capacity` entries (split across shards).
    /// `capacity = 0` disables the cache: every lookup misses and inserts
    /// are dropped.
    pub fn new(capacity: usize) -> ShardedLruCache<V> {
        ShardedLruCache::with_counters(capacity, Arc::new(Counter::new()), Arc::new(Counter::new()))
    }

    /// Cache whose hit/miss counters are externally owned — the serve path
    /// passes registry-backed counters here so cache statistics surface in
    /// the shared metrics export without a second set of atomics.
    pub fn with_counters(
        capacity: usize,
        hits: Arc<Counter>,
        misses: Arc<Counter>,
    ) -> ShardedLruCache<V> {
        let per_shard = capacity.div_ceil(SHARDS);
        ShardedLruCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits,
            misses,
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Mutex<LruShard<V>> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Look up `key`, bumping it to most-recently-used and counting the
    /// hit/miss.
    pub fn get(&self, key: u64) -> Option<V> {
        let got = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        match got {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        got
    }

    /// Insert (or refresh) `key`, evicting the shard's LRU entry at
    /// capacity. No-op on a zero-capacity cache.
    pub fn insert(&self, key: u64, value: V) {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if shard.capacity == 0 {
            return;
        }
        shard.insert(key, value);
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The serve path's featurization cache: fingerprint → shared features.
pub type FeatureCache = ShardedLruCache<Arc<PlanFeatures>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_counters_and_basic_lru() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(64);
        assert_eq!(c.get(1), None);
        c.insert(1, 10);
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // Keys that map to the same shard: multiples of SHARDS.
        let c: ShardedLruCache<u32> = ShardedLruCache::new(SHARDS * 3); // 3 per shard
        let k = |i: u64| i * SHARDS as u64;
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(3), 3);
        // Touch k1 so k2 is now the LRU.
        assert_eq!(c.get(k(1)), Some(1));
        c.insert(k(4), 4);
        assert_eq!(c.get(k(2)), None, "LRU entry should have been evicted");
        assert_eq!(c.get(k(1)), Some(1));
        assert_eq!(c.get(k(3)), Some(3));
        assert_eq!(c.get(k(4)), Some(4));
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(SHARDS * 2); // 2 per shard
        let k = |i: u64| i * SHARDS as u64;
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(1), 11); // refresh: k2 becomes LRU
        c.insert(k(3), 3); // evicts k2
        assert_eq!(c.get(k(1)), Some(11));
        assert_eq!(c.get(k(2)), None);
        assert_eq!(c.get(k(3)), Some(3));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(0);
        c.insert(1, 1);
        assert_eq!(c.get(1), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let cap = SHARDS * 4;
        let c: ShardedLruCache<u64> = ShardedLruCache::new(cap);
        for i in 0..10_000u64 {
            c.insert(i, i);
        }
        assert!(c.len() <= cap, "len {} > cap {cap}", c.len());
        // The most recent key per shard must still be present.
        assert_eq!(c.get(9_999), Some(9_999));
    }

    #[test]
    fn concurrent_access_stays_bounded_and_sane() {
        let c: ShardedLruCache<u64> = ShardedLruCache::new(128);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        let key = (t * 31 + i) % 400;
                        if let Some(v) = c.get(key) {
                            assert_eq!(v, key, "value must always match its key");
                        } else {
                            c.insert(key, key);
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 128);
        assert_eq!(c.hits() + c.misses(), 8 * 5_000);
    }
}
