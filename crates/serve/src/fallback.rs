//! Graceful degradation: a heuristic fallback estimator behind a circuit
//! breaker.
//!
//! When the learned model path fails — panicking forwards, deadline misses
//! piling up — the plan still carries the optimizer's own cost estimate,
//! and the Zero-Shot / FasCo line of work shows a cheap optimizer-cost
//! calibration is a serviceable floor. So instead of shedding, the serve
//! path answers from a [`FallbackEstimator`] (the default implementation
//! wraps the `pg_linear` baseline: `ln(time) ≈ a·ln(1+cost) + b`) and flags
//! the answer `degraded: true`.
//!
//! The [`CircuitBreaker`] decides *when*: it is a lock-free state machine
//! (closed → open → half-open) whose closed-state evidence is a 64-bit
//! shift register of recent outcomes — one `fetch_update` per result, a
//! popcount for the error rate, no mutex anywhere near the hot path. Open
//! lasts [`BreakerConfig::open_cooldown`], after which a single probe
//! request at a time is let through to the model; enough consecutive probe
//! successes close the breaker, one probe failure re-opens it.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use dace_baselines::{CostEstimator, PgLinear};
use dace_plan::{Dataset, PlanTree};

/// An estimator of last resort: answers when the model path cannot.
///
/// Implementations must be cheap, allocation-light and — above all —
/// total: `predict_ms` must return a finite positive number for every plan
/// the serve layer admits, because it runs exactly when the system is
/// already in trouble.
pub trait FallbackEstimator: Send + Sync + std::fmt::Debug {
    /// Short stable name, recorded in logs/results.
    fn name(&self) -> &str;
    /// Predicted latency in milliseconds; always finite and positive.
    fn predict_ms(&self, tree: &PlanTree) -> f64;
}

/// Latency bounds a fallback answer is clamped into: nothing real is below
/// the 0.1 µs measurement floor or above ~11.5 days.
const FALLBACK_MIN_MS: f64 = 1e-4;
const FALLBACK_MAX_MS: f64 = 1e9;

/// The default fallback: the `pg_linear` baseline (OLS in log–log space
/// over the plan's root optimizer cost), totalized by clamping its output
/// into `[1e-4, 1e9]` ms.
///
/// Unfitted ([`CostLinearFallback::identity`]) it predicts `1 + est_cost`
/// — the optimizer's cost read as milliseconds — which preserves the
/// *ordering* of plans even with no training data at all.
#[derive(Debug, Clone)]
pub struct CostLinearFallback {
    model: PgLinear,
}

impl CostLinearFallback {
    /// The unfitted identity calibration (slope 1, intercept 0).
    pub fn identity() -> CostLinearFallback {
        CostLinearFallback {
            model: PgLinear::new(),
        }
    }

    /// Fit the log–log calibration on labeled plans (same fit the
    /// `pg_linear` baseline uses in the eval tables).
    pub fn fit(train: &Dataset) -> CostLinearFallback {
        let mut model = PgLinear::new();
        model.fit(train);
        CostLinearFallback { model }
    }

    /// Fitted `(slope, intercept)`.
    pub fn coefficients(&self) -> (f64, f64) {
        self.model.coefficients()
    }
}

impl FallbackEstimator for CostLinearFallback {
    fn name(&self) -> &str {
        "pg_linear"
    }

    fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let ms = self.model.predict_ms(tree);
        if ms.is_finite() {
            ms.clamp(FALLBACK_MIN_MS, FALLBACK_MAX_MS)
        } else {
            // NaN cost or overflowed exp: answer the floor rather than
            // propagate garbage (admission validation makes this
            // unreachable for served traffic, but the trait promise is
            // unconditional).
            FALLBACK_MIN_MS
        }
    }
}

/// Circuit-breaker tuning. All-integer + `Duration`, so `Copy + Eq` inside
/// `ServeConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window of recent model outcomes the closed state judges on
    /// (clamped to `1..=56` — the register is one u64).
    pub window: u32,
    /// Minimum outcomes in the window before the error rate is believed.
    pub min_samples: u32,
    /// Open when `errors / samples ≥ error_percent / 100` (and at least one
    /// error was seen).
    pub error_percent: u32,
    /// How long the breaker stays open before letting a probe through.
    pub open_cooldown: Duration,
    /// Consecutive probe successes required to close again.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            min_samples: 8,
            error_percent: 50,
            open_cooldown: Duration::from_millis(25),
            probe_successes: 3,
        }
    }
}

/// What the breaker told a request to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerGate {
    /// Use the model (closed state).
    Model,
    /// Use the model *as the half-open probe* — the caller must report the
    /// outcome with `probe = true`.
    Probe,
    /// Answer from the fallback; the model is not trusted right now.
    Fallback,
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows to the model, outcomes are recorded.
    Closed,
    /// Tripped: traffic flows to the fallback until the cooldown expires.
    Open,
    /// Probing: one request at a time tries the model.
    HalfOpen,
}

/// State transition worth counting in metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Closed→Open trip, or a failed probe re-opening.
    Opened,
    /// Half-open probes succeeded; model traffic restored.
    Closed,
}

const ST_CLOSED: u8 = 0;
const ST_OPEN: u8 = 1;
const ST_HALF_OPEN: u8 = 2;

/// Outcome ring layout inside one `AtomicU64`: bits `0..window` hold the
/// most recent outcomes (bit = 1 ⇒ error, newest in bit 0), bits `56..63`
/// hold the saturating fill count. One `fetch_update` keeps ring and fill
/// consistent without a lock.
const FILL_SHIFT: u32 = 56;

/// Lock-free circuit breaker. See module docs for the state machine; all
/// methods are safe under arbitrary concurrency from worker threads.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    window_bits: u32,
    state: AtomicU8,
    outcomes: AtomicU64,
    opened_at_us: AtomicU64,
    probe_inflight: AtomicBool,
    probe_ok: AtomicU32,
    epoch: Instant,
}

impl CircuitBreaker {
    /// A closed breaker with `config` (window clamped to `1..=56`).
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            window_bits: config.window.clamp(1, 56),
            state: AtomicU8::new(ST_CLOSED),
            outcomes: AtomicU64::new(0),
            opened_at_us: AtomicU64::new(0),
            probe_inflight: AtomicBool::new(false),
            probe_ok: AtomicU32::new(0),
            epoch: Instant::now(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Current state (racy by nature; exact at quiescence).
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            ST_CLOSED => BreakerState::Closed,
            ST_OPEN => BreakerState::Open,
            _ => BreakerState::HalfOpen,
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Route a request: model, probe, or fallback. A `Probe` grant claims
    /// the single probe token; the caller **must** follow up with
    /// [`CircuitBreaker::on_result`]`(_, probe = true)` to release it.
    pub fn gate(&self) -> BreakerGate {
        loop {
            match self.state.load(Ordering::Acquire) {
                ST_CLOSED => return BreakerGate::Model,
                ST_OPEN => {
                    let opened = self.opened_at_us.load(Ordering::Acquire);
                    let cooldown = self.config.open_cooldown.as_micros() as u64;
                    if self.now_us().saturating_sub(opened) < cooldown {
                        return BreakerGate::Fallback;
                    }
                    if self
                        .state
                        .compare_exchange(
                            ST_OPEN,
                            ST_HALF_OPEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.probe_ok.store(0, Ordering::Release);
                        self.probe_inflight.store(true, Ordering::Release);
                        return BreakerGate::Probe;
                    }
                    // Lost the transition race; re-read the new state.
                    continue;
                }
                _ => {
                    return if self
                        .probe_inflight
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        BreakerGate::Probe
                    } else {
                        BreakerGate::Fallback
                    };
                }
            }
        }
    }

    /// Report a model-path outcome. `probe` must echo whether the request
    /// was gated as [`BreakerGate::Probe`]. Returns a transition to count,
    /// if this result caused one.
    pub fn on_result(&self, ok: bool, probe: bool) -> Option<BreakerEvent> {
        if !probe {
            return self.record(ok);
        }
        self.probe_inflight.store(false, Ordering::Release);
        if ok {
            let n = self.probe_ok.fetch_add(1, Ordering::AcqRel) + 1;
            if n >= self.config.probe_successes.max(1)
                && self
                    .state
                    .compare_exchange(ST_HALF_OPEN, ST_CLOSED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                self.outcomes.store(0, Ordering::Release);
                self.probe_ok.store(0, Ordering::Release);
                return Some(BreakerEvent::Closed);
            }
            None
        } else {
            self.probe_ok.store(0, Ordering::Release);
            if self
                .state
                .compare_exchange(ST_HALF_OPEN, ST_OPEN, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.opened_at_us.store(self.now_us(), Ordering::Release);
                return Some(BreakerEvent::Opened);
            }
            None
        }
    }

    /// Closed-state evidence: shift the outcome into the ring and trip if
    /// the windowed error rate crosses the threshold. No-op outside the
    /// closed state (stale results from before a trip must not double-trip).
    fn record(&self, ok: bool) -> Option<BreakerEvent> {
        if self.state.load(Ordering::Acquire) != ST_CLOSED {
            return None;
        }
        let w = u64::from(self.window_bits);
        let mask = (1u64 << self.window_bits) - 1;
        let prev = self
            .outcomes
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                let fill = (cur >> FILL_SHIFT).min(w);
                let ring = ((cur & mask) << 1 | u64::from(!ok)) & mask;
                Some(((fill + 1).min(w) << FILL_SHIFT) | ring)
            })
            .expect("updater always returns Some");
        // Recompute exactly what this thread published.
        let fill = ((prev >> FILL_SHIFT).min(w) + 1).min(w);
        let ring = ((prev & mask) << 1 | u64::from(!ok)) & mask;
        let errors = u64::from(ring.count_ones());
        if fill >= u64::from(self.config.min_samples.max(1))
            && errors > 0
            && errors * 100 >= u64::from(self.config.error_percent) * fill
            && self
                .state
                .compare_exchange(ST_CLOSED, ST_OPEN, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.opened_at_us.store(self.now_us(), Ordering::Release);
            self.outcomes.store(0, Ordering::Release);
            return Some(BreakerEvent::Opened);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_plan::{LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};

    fn plan_with(cost: f64, ms: f64) -> LabeledPlan {
        let mut b = TreeBuilder::new();
        let id = {
            let mut n = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
            n.est_cost = cost;
            n.actual_ms = ms;
            b.leaf(n)
        };
        LabeledPlan {
            tree: b.finish(id),
            db_id: 0,
            machine: MachineId::M1,
        }
    }

    fn quick_breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 4,
            error_percent: 50,
            open_cooldown: Duration::from_millis(5),
            probe_successes: 2,
        })
    }

    #[test]
    fn fallback_is_total_and_ordered() {
        let fb = CostLinearFallback::identity();
        let cheap = fb.predict_ms(&plan_with(10.0, 0.0).tree);
        let pricey = fb.predict_ms(&plan_with(10_000.0, 0.0).tree);
        assert!(cheap.is_finite() && cheap > 0.0);
        assert!(pricey > cheap, "cost ordering must survive the fallback");
        // Hostile root cost: still finite and positive.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -7.0] {
            let p = plan_with(bad, 0.0);
            let ms = fb.predict_ms(&p.tree);
            assert!(ms.is_finite() && ms > 0.0, "predict_ms({bad}) = {ms}");
        }
    }

    #[test]
    fn fitted_fallback_calibrates_cost_to_time() {
        // time = 0.004 × cost: the fit should land within 10%.
        let ds = Dataset::from_plans(
            (1..200)
                .map(|i| plan_with(i as f64 * 50.0, i as f64 * 50.0 * 0.004))
                .collect(),
        );
        let fb = CostLinearFallback::fit(&ds);
        let pred = fb.predict_ms(&ds.plans[100].tree);
        let actual = ds.plans[100].latency_ms();
        assert!(
            (pred / actual).max(actual / pred) < 1.1,
            "{pred} vs {actual}"
        );
    }

    #[test]
    fn stays_closed_on_successes() {
        let br = quick_breaker();
        for _ in 0..100 {
            assert_eq!(br.gate(), BreakerGate::Model);
            assert_eq!(br.on_result(true, false), None);
        }
        assert_eq!(br.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_open_on_error_rate_then_gates_fallback() {
        let br = quick_breaker();
        let mut opened = false;
        for _ in 0..8 {
            if br.on_result(false, false) == Some(BreakerEvent::Opened) {
                opened = true;
                break;
            }
        }
        assert!(opened, "all-error window must trip");
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.gate(), BreakerGate::Fallback);
        // Stale non-probe results while open are ignored.
        assert_eq!(br.on_result(true, false), None);
        assert_eq!(br.state(), BreakerState::Open);
    }

    #[test]
    fn below_min_samples_never_trips() {
        let br = CircuitBreaker::new(BreakerConfig {
            min_samples: 50,
            window: 8,
            ..quick_breaker().config
        });
        // Window saturates at 8 samples < min_samples 50: never trips.
        for _ in 0..100 {
            assert_eq!(br.on_result(false, false), None);
        }
        assert_eq!(br.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_cycle_closes_after_successes() {
        let br = quick_breaker();
        for _ in 0..8 {
            br.on_result(false, false);
        }
        assert_eq!(br.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(7));
        // Cooldown elapsed: one probe at a time.
        assert_eq!(br.gate(), BreakerGate::Probe);
        assert_eq!(br.state(), BreakerState::HalfOpen);
        assert_eq!(br.gate(), BreakerGate::Fallback, "single probe token");
        assert_eq!(br.on_result(true, true), None, "1 of 2 successes");
        assert_eq!(br.gate(), BreakerGate::Probe);
        assert_eq!(br.on_result(true, true), Some(BreakerEvent::Closed));
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.gate(), BreakerGate::Model);
    }

    #[test]
    fn probe_failure_reopens() {
        let br = quick_breaker();
        for _ in 0..8 {
            br.on_result(false, false);
        }
        std::thread::sleep(Duration::from_millis(7));
        assert_eq!(br.gate(), BreakerGate::Probe);
        assert_eq!(br.on_result(false, true), Some(BreakerEvent::Opened));
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.gate(), BreakerGate::Fallback, "cooldown restarts");
    }

    #[test]
    fn concurrent_results_never_wedge_the_breaker() {
        // Hammer gate/on_result from 4 threads; the breaker must end in a
        // legal state with no probe token leaked.
        let br = std::sync::Arc::new(quick_breaker());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let br = std::sync::Arc::clone(&br);
                std::thread::spawn(move || {
                    for i in 0..5000u32 {
                        match br.gate() {
                            BreakerGate::Model => {
                                br.on_result((i + t) % 3 != 0, false);
                            }
                            BreakerGate::Probe => {
                                br.on_result(i % 2 == 0, true);
                            }
                            BreakerGate::Fallback => {}
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Whatever state it landed in, the machine still makes progress:
        // a full success run from here must reach Closed via probes.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match br.gate() {
                BreakerGate::Model => break,
                BreakerGate::Probe => {
                    br.on_result(true, true);
                }
                BreakerGate::Fallback => std::thread::sleep(Duration::from_millis(1)),
            }
            assert!(
                Instant::now() < deadline,
                "breaker wedged in {:?}",
                br.state()
            );
        }
        assert_eq!(br.state(), BreakerState::Closed);
    }
}
