//! Deterministic, seeded fault injection for the serve path.
//!
//! Chaos testing is only useful when a failing run can be replayed: every
//! injection decision here is a pure function of `(seed, site, roll index)`,
//! where the roll index is a per-site atomic counter. Thread interleaving
//! changes *which worker* observes a given fault, but never *how many*
//! faults fire over N rolls — so the chaos tests and `serve_bench --chaos`
//! assert exact-ish fault counts and CI replays the same fault plan every
//! run.
//!
//! The injector is compiled in unconditionally (no feature flags — the
//! whole point is that the shipped binary is the tested binary) and costs
//! one relaxed atomic load per site when disabled. Probabilities are
//! integer parts-per-million so [`FaultConfig`] stays `Copy + Eq` inside
//! `ServeConfig`.
//!
//! Injected panics carry the [`INJECTED_PANIC`] marker and are silenced
//! from stderr by a process-wide panic-hook wrapper (installed once, only
//! when an injector with live faults is built) so a chaos run's output is
//! its report, not thousands of backtraces. Real panics still print.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;
use std::time::Duration;

/// Marker prefix carried by every injected panic's payload; the quiet
/// panic hook and the supervisor's accounting both key off it.
pub const INJECTED_PANIC: &str = "injected fault";

/// The places the injector can fire, in roll-counter order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic a worker at the top of its drain loop (no request held), after
    /// it acquired the queue lock — poisons the mutex and kills the thread,
    /// exercising poison recovery and the supervisor respawn path.
    WorkerKill = 0,
    /// Panic inside a group's forward path — caught per group; with a
    /// fallback configured the group is answered degraded.
    BatchPanic = 1,
    /// Extra latency injected into a group's processing stage.
    StageDelay = 2,
    /// Extra latency injected while *holding the queue lock* — every worker
    /// stalls behind it.
    QueueStall = 3,
    /// Corrupt checkpoint bytes before a reload (driven by the bench/test
    /// checkpointer, not the scheduler).
    CheckpointCorrupt = 4,
    /// Panic the background retrain thread mid-fine-tune (after it has
    /// drained feedback, before the candidate exists) — the adaptive
    /// controller must recover its in-flight latch and the serving model
    /// must be untouched.
    RetrainCrash = 5,
    /// Corrupt a retrained candidate's weights before shadow evaluation —
    /// shadow eval must catch the regression and roll back to last-good.
    CandidateSabotage = 6,
    /// Corrupt a tenant adapter checkpoint as the background pager loads it
    /// — the load must fail typed, the tenant must keep serving zero-shot
    /// from the base model, and a later retry must succeed once the fault
    /// plan quiets. Rolled once per background load by the adapter pager.
    AdapterLoadCorrupt = 7,
    /// A noisy-tenant traffic storm: a burst of submissions from one tenant
    /// far over its quota. Driven by the bench/test traffic generator (like
    /// [`FaultSite::CheckpointCorrupt`]), not the scheduler — the serve
    /// layer's quota and WFQ planes are what absorb it.
    TenantStorm = 8,
}

const SITE_COUNT: usize = 9;

/// Per-site salts so the same seed yields independent decision streams.
const SITE_SALT: [u64; SITE_COUNT] = [
    0x9a2e_71ff_0cd1_5b07,
    0x517c_c1b7_2722_0a95,
    0xd1b5_4a32_d192_ed03,
    0x2b99_2ddf_a232_49d6,
    0x8163_52a1_88cf_9b61,
    0x6c62_272e_07bb_0142,
    0x3c79_ac49_2ba7_b653,
    0x46d8_35a1_97b0_c2f9,
    0x1f8e_6b54_d3a9_07ce,
];

/// Fault plan: probabilities in parts-per-million per roll, plus the
/// injected delay magnitudes. All-integer (+`Duration`) so it stays
/// `Copy + Eq` as a `ServeConfig` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the decision stream; same seed + same roll counts = same
    /// fault plan.
    pub seed: u64,
    /// Worker-kill probability per drain (ppm).
    pub worker_kill_ppm: u32,
    /// Forward-path panic probability per adapter group (ppm).
    pub batch_panic_ppm: u32,
    /// Stage-delay probability per adapter group (ppm).
    pub stage_delay_ppm: u32,
    /// How long an injected stage delay sleeps.
    pub stage_delay: Duration,
    /// Queue-stall probability per drain (ppm).
    pub queue_stall_ppm: u32,
    /// How long an injected queue stall holds the queue lock.
    pub queue_stall: Duration,
    /// Checkpoint-corruption probability per save/load cycle (ppm); consumed
    /// by the bench/test checkpointer via [`FaultInjector::should_fire`].
    pub checkpoint_corrupt_ppm: u32,
    /// Mid-retrain crash probability per background retrain (ppm); consumed
    /// by the adaptive controller's retrain thread.
    pub retrain_crash_ppm: u32,
    /// Candidate-sabotage probability per retrained candidate (ppm);
    /// corrupts the candidate before shadow eval so rollback must fire.
    pub sabotage_ppm: u32,
    /// Adapter-load corruption probability per background page-in (ppm);
    /// consumed by the adapter pager's loader thread.
    pub adapter_load_corrupt_ppm: u32,
    /// Noisy-tenant storm-burst probability per submission tick (ppm);
    /// consumed by the bench/test traffic generator via
    /// [`FaultInjector::should_fire`].
    pub tenant_storm_ppm: u32,
}

impl FaultConfig {
    /// The all-zero plan: every site disabled.
    pub const fn disabled() -> FaultConfig {
        FaultConfig {
            seed: 0,
            worker_kill_ppm: 0,
            batch_panic_ppm: 0,
            stage_delay_ppm: 0,
            stage_delay: Duration::from_micros(0),
            queue_stall_ppm: 0,
            queue_stall: Duration::from_micros(0),
            checkpoint_corrupt_ppm: 0,
            retrain_crash_ppm: 0,
            sabotage_ppm: 0,
            adapter_load_corrupt_ppm: 0,
            tenant_storm_ppm: 0,
        }
    }

    /// True when no site can ever fire.
    pub fn is_noop(&self) -> bool {
        self.worker_kill_ppm == 0
            && self.batch_panic_ppm == 0
            && self.stage_delay_ppm == 0
            && self.queue_stall_ppm == 0
            && self.checkpoint_corrupt_ppm == 0
            && self.retrain_crash_ppm == 0
            && self.sabotage_ppm == 0
            && self.adapter_load_corrupt_ppm == 0
            && self.tenant_storm_ppm == 0
    }

    fn ppm(&self, site: FaultSite) -> u32 {
        match site {
            FaultSite::WorkerKill => self.worker_kill_ppm,
            FaultSite::BatchPanic => self.batch_panic_ppm,
            FaultSite::StageDelay => self.stage_delay_ppm,
            FaultSite::QueueStall => self.queue_stall_ppm,
            FaultSite::CheckpointCorrupt => self.checkpoint_corrupt_ppm,
            FaultSite::RetrainCrash => self.retrain_crash_ppm,
            FaultSite::CandidateSabotage => self.sabotage_ppm,
            FaultSite::AdapterLoadCorrupt => self.adapter_load_corrupt_ppm,
            FaultSite::TenantStorm => self.tenant_storm_ppm,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of the roll identity.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The seeded injector: one roll counter and one fire counter per site.
///
/// `enabled` is a runtime toggle (default: on iff the plan is not a no-op)
/// so recovery tests can stop the fault storm mid-run — via
/// [`DaceServer::fault_injector`](crate::DaceServer::fault_injector) — and
/// watch the circuit breaker close again.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    enabled: AtomicBool,
    rolls: [AtomicU64; SITE_COUNT],
    fires: [AtomicU64; SITE_COUNT],
}

impl FaultInjector {
    /// Build an injector for `config`; enabled iff the plan can fire at all.
    /// Building a live injector installs the quiet panic hook for injected
    /// panics (once per process).
    pub fn new(config: FaultConfig) -> FaultInjector {
        if !config.is_noop() {
            silence_injected_panics();
        }
        FaultInjector {
            config,
            enabled: AtomicBool::new(!config.is_noop()),
            rolls: Default::default(),
            fires: Default::default(),
        }
    }

    /// The fault plan this injector rolls against.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Runtime kill switch: a disabled injector never fires (rolls are not
    /// consumed either, preserving determinism across a disable/enable).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Whether the injector is currently live.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Roll for `site`: deterministically true for the fraction of rolls the
    /// plan configures. Each call consumes one roll index.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let ppm = self.config.ppm(site);
        if ppm == 0 {
            return false;
        }
        let k = self.rolls[site as usize].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.config.seed ^ SITE_SALT[site as usize] ^ splitmix64(k));
        let fire = h % 1_000_000 < u64::from(ppm);
        if fire {
            self.fires[site as usize].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Injected latency for a processing stage, if this roll fires.
    pub fn stage_delay(&self) -> Option<Duration> {
        self.should_fire(FaultSite::StageDelay)
            .then_some(self.config.stage_delay)
    }

    /// Injected latency under the queue lock, if this roll fires.
    pub fn queue_stall(&self) -> Option<Duration> {
        self.should_fire(FaultSite::QueueStall)
            .then_some(self.config.queue_stall)
    }

    /// Rolls consumed at `site` so far.
    pub fn rolls(&self, site: FaultSite) -> u64 {
        self.rolls[site as usize].load(Ordering::Relaxed)
    }

    /// Faults fired at `site` so far.
    pub fn fires(&self, site: FaultSite) -> u64 {
        self.fires[site as usize].load(Ordering::Relaxed)
    }
}

/// Install (once per process) a panic-hook wrapper that suppresses the
/// default backtrace spew for panics whose payload carries
/// [`INJECTED_PANIC`]. All other panics reach the previous hook untouched.
pub fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains(INJECTED_PANIC))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains(INJECTED_PANIC))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            worker_kill_ppm: 100_000, // 10%
            batch_panic_ppm: 500_000, // 50%
            ..FaultConfig::disabled()
        }
    }

    #[test]
    fn noop_plan_never_fires_and_consumes_no_rolls() {
        let inj = FaultInjector::new(FaultConfig::disabled());
        assert!(!inj.enabled());
        for _ in 0..100 {
            assert!(!inj.should_fire(FaultSite::WorkerKill));
        }
        assert_eq!(inj.rolls(FaultSite::WorkerKill), 0);
    }

    #[test]
    fn same_seed_same_fault_plan() {
        let a = FaultInjector::new(plan(42));
        let b = FaultInjector::new(plan(42));
        let fa: Vec<bool> = (0..2000)
            .map(|_| a.should_fire(FaultSite::WorkerKill))
            .collect();
        let fb: Vec<bool> = (0..2000)
            .map(|_| b.should_fire(FaultSite::WorkerKill))
            .collect();
        assert_eq!(fa, fb);
        assert_eq!(
            a.fires(FaultSite::WorkerKill),
            b.fires(FaultSite::WorkerKill)
        );
        // Different seed: a different plan (overwhelmingly likely at n=2000).
        let c = FaultInjector::new(plan(43));
        let fc: Vec<bool> = (0..2000)
            .map(|_| c.should_fire(FaultSite::WorkerKill))
            .collect();
        assert_ne!(fa, fc);
    }

    #[test]
    fn fire_rate_tracks_configured_ppm() {
        let inj = FaultInjector::new(plan(7));
        for _ in 0..20_000 {
            inj.should_fire(FaultSite::BatchPanic);
        }
        let rate = inj.fires(FaultSite::BatchPanic) as f64 / 20_000.0;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn sites_roll_independent_streams() {
        let inj = FaultInjector::new(plan(7));
        for _ in 0..1000 {
            inj.should_fire(FaultSite::WorkerKill);
        }
        assert_eq!(inj.rolls(FaultSite::BatchPanic), 0);
        assert_eq!(inj.rolls(FaultSite::WorkerKill), 1000);
    }

    #[test]
    fn disable_stops_fires_without_consuming_rolls() {
        let inj = FaultInjector::new(plan(7));
        for _ in 0..100 {
            inj.should_fire(FaultSite::WorkerKill);
        }
        let rolls = inj.rolls(FaultSite::WorkerKill);
        inj.set_enabled(false);
        for _ in 0..100 {
            assert!(!inj.should_fire(FaultSite::WorkerKill));
        }
        assert_eq!(inj.rolls(FaultSite::WorkerKill), rolls);
        // Re-enabling resumes the same decision stream where it left off.
        inj.set_enabled(true);
        let cont: Vec<bool> = (0..100)
            .map(|_| inj.should_fire(FaultSite::WorkerKill))
            .collect();
        let replay = FaultInjector::new(plan(7));
        let full: Vec<bool> = (0..200)
            .map(|_| replay.should_fire(FaultSite::WorkerKill))
            .collect();
        assert_eq!(cont[..], full[100..]);
    }
}
