//! The estimator health plane: one place where the serving stack's
//! lifecycle journal, per-version accuracy ledger, SLO burn-rate tracking
//! and diagnostic bundle dumps meet.
//!
//! Every component that changes the estimator's behaviour — the breaker,
//! the adaptive controller, the worker supervisor — reports through
//! [`HealthPlane::emit`], which appends a [`LifecycleEvent`] to the
//! crash-safe journal and, for the two events that mean "something just
//! went wrong in production" (breaker open, probation rollback),
//! snapshots the flight recorder and journal tail into a bundle directory
//! for post-mortem. Accuracy observations flow through
//! [`HealthPlane::observe_qerr`], feeding both the per-(version, database)
//! q-error sketches and the multi-window SLO burn-rate alerts.
//!
//! The plane is always present on a [`DaceServer`](crate::DaceServer) —
//! with default [`HealthConfig`] it journals in memory and never touches
//! disk, so the hot path cost is a handful of atomics per observation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use dace_obs::{
    chrome_trace, AccuracyLedger, EventJournal, FlightRecorder, JournalRecord, LifecycleEvent,
    MetricsRegistry, SloConfig, SloStatus, SloTracker,
};

use crate::fallback::BreakerState;
use crate::scheduler::Tier;
use crate::supervisor::lock_recover;

/// How many journal records a diagnostic bundle captures.
const BUNDLE_TAIL: usize = 512;

/// Cap on bundles dumped per process, so a flapping breaker cannot fill
/// the disk with near-identical snapshots.
const MAX_BUNDLES: u64 = 16;

/// Configuration for the health plane. Unlike
/// [`ServeConfig`](crate::ServeConfig) this is not `Copy` (it owns paths);
/// the default journals in memory with no bundle directory.
#[derive(Debug, Clone, Default)]
pub struct HealthConfig {
    /// Where to persist the lifecycle journal. `None` journals in memory.
    pub journal_path: Option<PathBuf>,
    /// Where breaker-open / rollback diagnostic bundles land. `None`
    /// disables bundle dumps.
    pub bundle_dir: Option<PathBuf>,
    /// SLO targets and burn-rate windows.
    pub slo: SloConfig,
}

/// A point-in-time health verdict, served as JSON by `/health`.
#[derive(Debug, Clone, Serialize)]
pub struct HealthReport {
    /// `"ok"` or `"degraded"`. Degraded when the breaker is open or
    /// half-open, or when any SLO burn-rate alert is latched.
    pub status: String,
    /// Breaker state: `"closed"`, `"open"`, `"half_open"`, or `"none"`
    /// when the server runs without a fallback.
    pub breaker: String,
    /// Q-error SLO burn-rate status.
    pub qerr: SloStatus,
    /// Deadline-miss SLO burn-rate status.
    pub deadline: SloStatus,
    /// Lifecycle events journaled so far.
    pub journal_len: u64,
    /// Diagnostic bundles dumped so far.
    pub bundles_dumped: u64,
    /// Requests answered through the full-precision tier.
    pub tier_full: u64,
    /// Requests answered through the quantized fast tier.
    pub tier_quantized: u64,
}

type DropSource = (&'static str, Box<dyn Fn() -> u64 + Send + Sync>);
type TextSource = Box<dyn Fn() -> String + Send + Sync>;

/// The health plane itself. Cheap to share (`Arc`), safe to call from
/// every worker thread.
pub struct HealthPlane {
    journal: EventJournal,
    ledger: AccuracyLedger,
    slo: SloTracker,
    bundle_dir: Option<PathBuf>,
    bundles: AtomicU64,
    drop_sources: Mutex<Vec<DropSource>>,
    text_sources: Mutex<Vec<TextSource>>,
    /// Answered requests per precision tier, indexed `[full, quantized]`.
    tier_counts: [AtomicU64; 2],
}

impl std::fmt::Debug for HealthPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthPlane")
            .field("journal_len", &self.journal.len())
            .field("bundles", &self.bundles.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl HealthPlane {
    /// Build a plane from `config`. A journal path that cannot be opened
    /// degrades to an in-memory journal rather than failing the server:
    /// observability must never take the data path down.
    pub fn new(config: HealthConfig) -> Arc<HealthPlane> {
        let journal = match &config.journal_path {
            Some(path) => EventJournal::open(path).unwrap_or_else(|e| {
                eprintln!(
                    "health: journal at {} unavailable ({e}); journaling in memory",
                    path.display()
                );
                EventJournal::in_memory()
            }),
            None => EventJournal::in_memory(),
        };
        Arc::new(HealthPlane {
            journal,
            ledger: AccuracyLedger::new(),
            slo: SloTracker::new(config.slo),
            bundle_dir: config.bundle_dir,
            bundles: AtomicU64::new(0),
            drop_sources: Mutex::new(Vec::new()),
            text_sources: Mutex::new(Vec::new()),
            tier_counts: [AtomicU64::new(0), AtomicU64::new(0)],
        })
    }

    /// The lifecycle journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The per-(version, database) accuracy ledger.
    pub fn ledger(&self) -> &AccuracyLedger {
        &self.ledger
    }

    /// The SLO burn-rate tracker.
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// Append a lifecycle event stamped with `trace`. Breaker-open and
    /// rollback events additionally trigger a diagnostic bundle dump.
    pub fn emit(&self, trace: u64, event: LifecycleEvent) -> JournalRecord {
        let cause = match &event {
            LifecycleEvent::BreakerOpened { .. } => Some("breaker_open"),
            LifecycleEvent::RollbackFired { .. } => Some("rollback"),
            _ => None,
        };
        let record = self.journal.append(trace, event);
        if let Some(cause) = cause {
            self.dump_bundle(cause, trace);
        }
        record
    }

    /// Record one accuracy observation: feed the (version, db) q-error
    /// sketch and push the sample through the q-error SLO, journaling an
    /// [`LifecycleEvent::Alert`] if the burn-rate alert fires.
    pub fn observe_qerr(&self, version: u64, db: u32, q: f64, trace: u64) {
        self.ledger.observe(version, db, q);
        if let Some(alert) = self.slo.push_qerr(q) {
            self.emit(
                trace,
                LifecycleEvent::Alert {
                    slo: alert.slo,
                    fast_burn: alert.fast_burn,
                    slow_burn: alert.slow_burn,
                    threshold: alert.threshold,
                },
            );
        }
    }

    /// Push one batch's deadline outcomes (`missed` expirations,
    /// `met` on-time responses) through the deadline SLO.
    pub fn record_deadlines(&self, missed: u64, met: u64, trace: u64) {
        if missed == 0 && met == 0 {
            return;
        }
        if let Some(alert) = self.slo.push_deadline_batch(missed, met) {
            self.emit(
                trace,
                LifecycleEvent::Alert {
                    slo: alert.slo,
                    fast_burn: alert.fast_burn,
                    slow_burn: alert.slow_burn,
                    threshold: alert.threshold,
                },
            );
        }
    }

    /// Register a drop-counter source exported as a gauge named `name`.
    /// The closure is sampled at export time (drop counters live inside
    /// lock-free structures that cannot push). `registry` receives the
    /// `# HELP` description immediately; the gauge itself is set on each
    /// [`prometheus_text`](HealthPlane::prometheus_text) call.
    ///
    /// Sources must not hold a strong reference back to anything that owns
    /// this plane (capture a `Weak` and upgrade), or the cycle leaks.
    pub fn register_drop_gauge(
        &self,
        registry: &MetricsRegistry,
        name: &'static str,
        help: &str,
        source: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        registry.describe(name, help);
        registry.gauge(name).set(source());
        lock_recover(&self.drop_sources).push((name, Box::new(source)));
    }

    /// Count one answered request on `tier`. Called from the respond paths
    /// (model and degraded alike — the split is on routed tier, not on
    /// which engine produced the number).
    pub fn count_tier(&self, tier: Tier) {
        let idx = match tier {
            Tier::Full => 0,
            Tier::Quantized => 1,
        };
        self.tier_counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Answered-request counts as `(full, quantized)`.
    pub fn tier_counts(&self) -> (u64, u64) {
        (
            self.tier_counts[0].load(Ordering::Relaxed),
            self.tier_counts[1].load(Ordering::Relaxed),
        )
    }

    /// Register a closure whose output is appended verbatim to the
    /// Prometheus exposition. Used for families whose label sets live in
    /// structures the registry cannot see (per-shard queue depths, steal
    /// matrices). The closure must emit complete `# HELP`/`# TYPE` headers
    /// for every family it exports, and must not hold a strong reference
    /// back to anything that owns this plane (capture a `Weak`).
    pub fn register_text_source(&self, source: impl Fn() -> String + Send + Sync + 'static) {
        lock_recover(&self.text_sources).push(Box::new(source));
    }

    /// Render the full Prometheus exposition: refresh every registered
    /// drop gauge from its source, then concatenate the registry's series
    /// with the per-tier request counters, every registered text source,
    /// and the accuracy ledger's per-(version, db) q-error summaries.
    pub fn prometheus_text(&self, registry: &MetricsRegistry) -> String {
        for (name, source) in lock_recover(&self.drop_sources).iter() {
            registry.gauge(name).set(source());
        }
        let mut out = registry.prometheus_text();
        let (full, quant) = self.tier_counts();
        out.push_str("# HELP serve_tier_requests_total Requests answered per precision tier.\n");
        out.push_str("# TYPE serve_tier_requests_total counter\n");
        out.push_str(&format!(
            "serve_tier_requests_total{{tier=\"full\"}} {full}\n"
        ));
        out.push_str(&format!(
            "serve_tier_requests_total{{tier=\"quantized\"}} {quant}\n"
        ));
        for source in lock_recover(&self.text_sources).iter() {
            out.push_str(&source());
        }
        out.push_str(&self.ledger.prometheus_text());
        out
    }

    /// The current health verdict. `breaker` is `None` for servers
    /// without a fallback (no breaker to report).
    pub fn health_report(&self, breaker: Option<BreakerState>) -> HealthReport {
        let qerr = self.slo.qerr.status();
        let deadline = self.slo.deadline.status();
        let breaker_degraded = matches!(
            breaker,
            Some(BreakerState::Open) | Some(BreakerState::HalfOpen)
        );
        let status = if breaker_degraded || qerr.alerting || deadline.alerting {
            "degraded"
        } else {
            "ok"
        };
        HealthReport {
            status: status.to_string(),
            breaker: match breaker {
                Some(BreakerState::Closed) => "closed",
                Some(BreakerState::Open) => "open",
                Some(BreakerState::HalfOpen) => "half_open",
                None => "none",
            }
            .to_string(),
            qerr,
            deadline,
            journal_len: self.journal.len(),
            bundles_dumped: self.bundles.load(Ordering::Relaxed),
            tier_full: self.tier_counts[0].load(Ordering::Relaxed),
            tier_quantized: self.tier_counts[1].load(Ordering::Relaxed),
        }
    }

    /// Bundles dumped so far.
    pub fn bundles_dumped(&self) -> u64 {
        self.bundles.load(Ordering::Relaxed)
    }

    /// Snapshot the journal tail and the flight recorder into
    /// `bundle_dir/bundle-<n>-<cause>/` and journal a
    /// [`LifecycleEvent::BundleDumped`]. No-op without a bundle directory
    /// or past [`MAX_BUNDLES`]. Draining the global flight recorder here
    /// is deliberate: the bundle *is* the trace consumer for the incident
    /// window.
    fn dump_bundle(&self, cause: &str, trace: u64) -> Option<PathBuf> {
        let base = self.bundle_dir.as_ref()?;
        let n = self.bundles.fetch_add(1, Ordering::Relaxed);
        if n >= MAX_BUNDLES {
            return None;
        }
        let dir = base.join(format!("bundle-{n:03}-{cause}"));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("health: bundle dir {} failed: {e}", dir.display());
            return None;
        }
        let tail = self.journal.tail(BUNDLE_TAIL);
        let mut jsonl = String::new();
        for rec in &tail {
            if let Ok(line) = serde_json::to_string(rec) {
                jsonl.push_str(&line);
                jsonl.push('\n');
            }
        }
        let _ = std::fs::write(dir.join("journal_tail.jsonl"), jsonl);
        let events = FlightRecorder::global().snapshot_records();
        let _ = std::fs::write(dir.join("flight_recorder.json"), chrome_trace(&events));
        self.journal.append(
            trace,
            LifecycleEvent::BundleDumped {
                dir: dir.display().to_string(),
                cause: cause.to_string(),
            },
        );
        Some(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dace-health-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn default_plane_journals_in_memory() {
        let plane = HealthPlane::new(HealthConfig::default());
        plane.emit(7, LifecycleEvent::BreakerClosed);
        assert_eq!(plane.journal().len(), 1);
        assert!(plane.journal().path().is_none());
        let report = plane.health_report(None);
        assert_eq!(report.status, "ok");
        assert_eq!(report.breaker, "none");
    }

    #[test]
    fn breaker_open_flips_report_to_degraded() {
        let plane = HealthPlane::new(HealthConfig::default());
        assert_eq!(plane.health_report(Some(BreakerState::Closed)).status, "ok");
        let r = plane.health_report(Some(BreakerState::Open));
        assert_eq!(r.status, "degraded");
        assert_eq!(r.breaker, "open");
        assert_eq!(
            plane.health_report(Some(BreakerState::HalfOpen)).status,
            "degraded"
        );
    }

    #[test]
    fn qerr_slo_alert_journals_and_degrades() {
        let slo = SloConfig {
            fast_window: 16,
            slow_window: 32,
            ..SloConfig::default()
        };
        let plane = HealthPlane::new(HealthConfig {
            slo,
            ..HealthConfig::default()
        });
        // Every sample badly misses the q-error target: burn saturates.
        for _ in 0..64 {
            plane.observe_qerr(1, 0, 100.0, 42);
        }
        let report = plane.health_report(Some(BreakerState::Closed));
        assert_eq!(report.status, "degraded", "report: {report:?}");
        assert!(report.qerr.alerting);
        let tail = plane.journal().tail(64);
        let alert = tail
            .iter()
            .find(|r| matches!(r.event, LifecycleEvent::Alert { .. }))
            .expect("alert journaled");
        assert_eq!(alert.trace, 42);
        // The ledger saw every observation under (version 1, db 0).
        assert_eq!(plane.ledger().sketch(1, 0).count(), 64);
    }

    #[test]
    fn breaker_open_dumps_a_bundle() {
        let dir = temp_dir("bundle");
        let plane = HealthPlane::new(HealthConfig {
            bundle_dir: Some(dir.clone()),
            ..HealthConfig::default()
        });
        plane.emit(
            9,
            LifecycleEvent::BreakerOpened {
                error_percent: 50.0,
            },
        );
        assert_eq!(plane.bundles_dumped(), 1);
        let bundle = dir.join("bundle-000-breaker_open");
        assert!(bundle.join("journal_tail.jsonl").is_file());
        assert!(bundle.join("flight_recorder.json").is_file());
        // The dump itself is journaled, after the triggering event.
        let tail = plane.journal().tail(4);
        assert!(tail
            .iter()
            .any(|r| matches!(&r.event, LifecycleEvent::BundleDumped { cause, .. } if cause == "breaker_open")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_gauges_refresh_at_export() {
        let plane = HealthPlane::new(HealthConfig::default());
        let registry = MetricsRegistry::new();
        let value = Arc::new(AtomicU64::new(3));
        let v = Arc::clone(&value);
        plane.register_drop_gauge(&registry, "test_ring_dropped", "Test drops.", move || {
            v.load(Ordering::Relaxed)
        });
        value.store(11, Ordering::Relaxed);
        let text = plane.prometheus_text(&registry);
        assert!(text.contains("test_ring_dropped 11"));
        assert!(text.contains("# HELP test_ring_dropped Test drops."));
    }
}
