//! The introspection endpoint: a dependency-free HTTP/1.1 server over
//! `std::net::TcpListener` exposing the health plane.
//!
//! Routes (all `GET`):
//!
//! - `/health` — JSON [`HealthReport`](crate::HealthReport); the status
//!   field flips `ok` → `degraded` while the breaker is open/half-open or
//!   an SLO burn-rate alert is latched. The HTTP status stays 200 so
//!   scrapers can always read the body.
//! - `/metrics` — Prometheus text: serve/adaptive series, refreshed drop
//!   gauges, and the per-(version, db) q-error ledger.
//! - `/events?n=N` — the last `N` (default 256) lifecycle journal records
//!   as a JSON array.
//! - `/trace` — Chrome-trace JSON of the flight recorder. **Draining**:
//!   this consumes the ring, like any other snapshot consumer.
//! - `/version` — JSON model-registry summary (base version, publishes,
//!   adapters).
//!
//! The accept loop is nonblocking and polls a shutdown flag every ~2 ms,
//! so [`IntrospectServer::stop`] (and server shutdown) join promptly. One
//! request per connection, `Connection: close` — diagnostics traffic, not
//! a web server. [`http_get`] is the matching curl-free client used by CI
//! and the benches.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Serialize;

use dace_obs::{chrome_trace, FlightRecorder, MetricsRegistry};

use crate::health::HealthPlane;
use crate::registry::ModelRegistry;
use crate::scheduler::WorkerCtx;

/// Default `/events` tail length when `?n=` is absent.
const DEFAULT_EVENTS_TAIL: usize = 256;

/// Model-registry summary served by `/version`.
#[derive(Debug, Serialize)]
struct VersionInfo {
    base_version: u64,
    versions_published: u64,
    adapters: Vec<String>,
}

/// Handle to the background introspection listener. Stops (sets the flag,
/// joins the thread) on [`stop`](IntrospectServer::stop) or drop.
#[derive(Debug)]
pub struct IntrospectServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectServer {
    /// Bind `addr` (port 0 picks a free port — read it back via
    /// [`addr`](IntrospectServer::addr)) and serve the health plane from a
    /// background thread.
    pub(crate) fn start(
        addr: SocketAddr,
        plane: Arc<HealthPlane>,
        registry: Arc<MetricsRegistry>,
        models: Arc<ModelRegistry>,
        ctx: Arc<WorkerCtx>,
    ) -> std::io::Result<IntrospectServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dace-introspect".to_string())
            .spawn(move || {
                accept_loop(&listener, &stop_flag, &plane, &registry, &models, &ctx);
            })?;
        Ok(IntrospectServer {
            addr: bound,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolved port when constructed with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to exit and join it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IntrospectServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    plane: &HealthPlane,
    registry: &MetricsRegistry,
    models: &ModelRegistry,
    ctx: &WorkerCtx,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Diagnostics traffic is sparse; serve inline rather than
                // spawning. A stuck client is bounded by the read timeout.
                let _ = serve_connection(stream, plane, registry, models, ctx);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    plane: &HealthPlane,
    registry: &MetricsRegistry,
    models: &ModelRegistry,
    ctx: &WorkerCtx,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.set_nonblocking(false)?;

    // Read until the end of the request head; the routes take no body.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.len() > 16 * 1024 {
                    break; // oversized head: answer whatever we parsed
                }
            }
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };

    match path {
        "/health" => {
            let breaker = ctx.degrade.as_ref().map(|d| d.breaker.state());
            let body = serde_json::to_string(&plane.health_report(breaker))
                .unwrap_or_else(|_| "{}".to_string());
            respond(&mut stream, 200, "application/json", &body)
        }
        "/metrics" => {
            let body = plane.prometheus_text(registry);
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/events" => {
            let n = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("n="))
                        .and_then(|v| v.parse::<usize>().ok())
                })
                .unwrap_or(DEFAULT_EVENTS_TAIL);
            let body = serde_json::to_string(&plane.journal().tail(n))
                .unwrap_or_else(|_| "[]".to_string());
            respond(&mut stream, 200, "application/json", &body)
        }
        "/trace" => {
            let events = FlightRecorder::global().snapshot_records();
            respond(&mut stream, 200, "application/json", &chrome_trace(&events))
        }
        "/version" => {
            let base = models.base();
            let info = VersionInfo {
                base_version: base.version,
                versions_published: models.versions_published(),
                adapters: models.adapter_names(),
            };
            let body = serde_json::to_string(&info).unwrap_or_else(|_| "{}".to_string());
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP GET against an introspection endpoint — the
/// curl-free client CI and the benches use. Returns `(status, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "malformed status line"))?;
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}
