#![warn(missing_docs)]
//! `dace-serve` — online inference serving for the DACE estimator.
//!
//! The paper's pitch is an estimator cheap enough for the optimizer's hot
//! path: sub-millisecond inference, ~1 MB models, per-deployment LoRA
//! fine-tuning. This crate is the layer that turns the batched kernels of
//! `dace-core` into a service that can hold that promise under concurrent
//! traffic:
//!
//! * [`DaceServer`] — a **micro-batching scheduler**: a bounded MPSC queue
//!   drained by worker threads into packed block-diagonal batches under a
//!   `max_batch`/`max_wait` policy, with admission control (load shedding,
//!   per-request deadlines) so overload degrades tail latency gracefully.
//! * [`ModelRegistry`] — the pretrained base model plus named per-database
//!   LoRA adapters behind hand-rolled `arc-swap`-style cells: adapters
//!   fine-tuned offline hot-swap under live traffic with **zero locks on
//!   the read path**, and every response records the version that served it.
//! * [`FeatureCache`] — a sharded LRU over structural plan fingerprints,
//!   because featurization is the serve path's dominant non-matmul cost.
//! * [`ServeMetrics`] / [`MetricsSnapshot`] — serve-path instrumentation
//!   registered in a shared [`dace_obs::MetricsRegistry`] (queue wait, batch
//!   size, cache lookup, featurize, attention/MLP forward split, end-to-end
//!   p50/p95/p99), exportable as Prometheus text or JSON and printed by the
//!   `serve_bench` binary in `dace-eval`.
//! * **Robustness** — workers are supervised (`catch_unwind` isolation,
//!   respawn with capped backoff, poison-recovering locks); an optional
//!   [`FallbackEstimator`] behind a [`CircuitBreaker`] answers
//!   `degraded: true` from an optimizer-cost heuristic when the model path
//!   is distrusted; and a deterministic seeded [`FaultInjector`]
//!   ([`ServeConfig::faults`]) drives the chaos tests and
//!   `serve_bench --chaos`.
//! * **Online adaptation** — an [`AdaptiveController`] closes the
//!   observe→retrain→swap loop caller-side: completed requests with
//!   measured actuals feed a lock-free ring, a sliding-window
//!   [`DriftDetector`] over q-error quantiles trips a background LoRA
//!   retrain, shadow eval gates promotion (through the crash-safe
//!   checkpoint path), and a probation window rolls back to last-good if
//!   live traffic disagrees — all without touching the serve hot path
//!   (`serve_bench --adaptive` proves the loop end to end).
//! * **Multi-tenant isolation** — requests carry a tenant id
//!   ([`DaceServer::submit_for`]): each shard drains per-tenant sub-queues
//!   by deficit-round-robin weighted-fair queueing so a flooding tenant
//!   sheds only its own traffic; admission enforces per-tenant token-bucket
//!   quotas and in-flight caps ([`ServeError::QuotaExceeded`]); every
//!   tenant has its own [`CircuitBreaker`]; and the [`AdapterPager`] keeps
//!   a bounded hot set of per-tenant adapters, answering cold tenants
//!   zero-shot from the base model (`degraded: true`, never blocked).
//!
//! ```no_run
//! use dace_serve::{DaceServer, ModelRegistry, ServeConfig};
//! use std::sync::Arc;
//! # fn estimator() -> dace_core::DaceEstimator { unimplemented!() }
//! # fn some_plan() -> dace_plan::PlanTree { unimplemented!() }
//!
//! let registry = Arc::new(ModelRegistry::new(estimator()));
//! let server = DaceServer::new(Arc::clone(&registry), ServeConfig::default());
//! let pred = server.predict(&some_plan()).unwrap();
//! println!("{} ms, served by version {}", pred.ms, pred.version);
//! ```

mod adaptive;
mod cache;
mod fallback;
mod fault;
mod health;
mod introspect;
mod metrics;
mod paging;
mod registry;
mod scheduler;
mod supervisor;
mod tenant;

pub use adaptive::{
    q_error, AdaptiveConfig, AdaptiveController, AdaptiveMetrics, DriftConfig, DriftDetector,
    DriftTrip, FeedbackBuffer, FeedbackSample,
};
pub use cache::{FeatureCache, ShardedLruCache};
pub use dace_obs::{
    EventJournal, JournalRecord, LifecycleEvent, MetricsRegistry, SloConfig, SloStatus,
};
pub use fallback::{
    BreakerConfig, BreakerEvent, BreakerGate, BreakerState, CircuitBreaker, CostLinearFallback,
    FallbackEstimator,
};
pub use fault::{silence_injected_panics, FaultConfig, FaultInjector, FaultSite, INJECTED_PANIC};
pub use health::{HealthConfig, HealthPlane, HealthReport};
pub use introspect::{http_get, IntrospectServer};
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, ServeMetrics};
pub use paging::{AdapterPager, PagerConfig};
pub use registry::{ModelRegistry, ModelVersion, RegistryConfig, RegistryError, ReloadError};
pub use scheduler::{
    DaceServer, Prediction, PredictionHandle, ServeConfig, ServeError, ShardSnapshot,
    StageBreakdown, Tier, FALLBACK_VERSION,
};
pub use tenant::{validate_tenant_id, TenantConfig, TenantSnapshot, MAX_TENANT_ID_BYTES};
