//! Serve-path metrics: lock-free atomic counters and fixed-bucket latency
//! histograms, snapshotted on demand.
//!
//! Histograms use an HDR-style layout — 8 linear sub-buckets per power-of-2
//! octave — so quantile estimates carry at most ~12.5% relative error while
//! `record` stays a single relaxed `fetch_add`. Everything here is written
//! from the serve hot path, so there are no locks anywhere.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Sub-bucket resolution: `2^SUB_BITS` linear buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets; covers values up to `2^60` with clamping above.
const BUCKETS: usize = 512;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let shift = msb - SUB_BITS as u64;
    let sub = (v >> shift) & (SUB - 1);
    ((((msb - SUB_BITS as u64) + 1) * SUB) + sub).min(BUCKETS as u64 - 1) as usize
}

/// Inclusive upper bound of bucket `i` (what quantiles report).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let shift = i / SUB - 1;
    let sub = i % SUB;
    ((SUB + sub + 1) << shift) - 1
}

/// A fixed-bucket concurrent histogram of `u64` samples (the serve layer
/// records microseconds and batch sizes). All operations are wait-free
/// relaxed atomics; snapshots are not linearizable with respect to
/// concurrent writers, which is fine for monitoring.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let quantile = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the p-quantile sample, 1-based.
            let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(BUCKETS - 1)
        };
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean of the raw samples (exact, from the running sum).
    pub mean: f64,
    /// Median (bucket upper bound, ≤ ~12.5% high).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
}

/// All serve-path instrumentation, shared between the scheduler, its worker
/// threads and whoever snapshots.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests admitted into the queue.
    pub submitted: AtomicU64,
    /// Requests answered with a prediction.
    pub completed: AtomicU64,
    /// Requests rejected at admission because the queue was full.
    pub shed: AtomicU64,
    /// Requests dropped because their deadline passed before a worker
    /// reached them.
    pub expired: AtomicU64,
    /// Requests naming an adapter the registry does not hold.
    pub unknown_adapter: AtomicU64,
    /// Batches drained by workers.
    pub batches: AtomicU64,
    /// Time each request spent queued before a worker drained it (µs).
    pub queue_wait_us: Histogram,
    /// Drained batch sizes (requests per batch).
    pub batch_size: Histogram,
    /// Per-batch collection time: first request drained to batch dispatched
    /// (µs) — how much of the `max_wait` window batches actually pay.
    pub drain_us: Histogram,
    /// Per-batch featurization time, cache misses included (µs).
    pub featurize_us: Histogram,
    /// Per-batch packed forward-pass time (µs).
    pub forward_us: Histogram,
    /// Per-batch response-delivery time: client handoff including wakeups
    /// (µs).
    pub respond_us: Histogram,
    /// End-to-end request latency, admission to response (µs).
    pub e2e_us: Histogram,
}

impl ServeMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Snapshot every counter and histogram. Cache counters live in the
    /// cache itself; [`DaceServer::metrics_snapshot`] merges them in.
    ///
    /// [`DaceServer::metrics_snapshot`]: crate::DaceServer::metrics_snapshot
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: load(&self.submitted),
            completed: load(&self.completed),
            shed: load(&self.shed),
            expired: load(&self.expired),
            unknown_adapter: load(&self.unknown_adapter),
            batches: load(&self.batches),
            cache_hits: 0,
            cache_misses: 0,
            queue_wait_us: self.queue_wait_us.snapshot(),
            batch_size: self.batch_size.snapshot(),
            drain_us: self.drain_us.snapshot(),
            featurize_us: self.featurize_us.snapshot(),
            forward_us: self.forward_us.snapshot(),
            respond_us: self.respond_us.snapshot(),
            e2e_us: self.e2e_us.snapshot(),
        }
    }
}

/// Point-in-time view of the whole serve path, printable and serializable
/// (what `serve_bench` reports and CI asserts on).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests load-shed at admission.
    pub shed: u64,
    /// Requests expired in queue.
    pub expired: u64,
    /// Requests for unknown adapters.
    pub unknown_adapter: u64,
    /// Batches drained.
    pub batches: u64,
    /// Featurization-cache hits.
    pub cache_hits: u64,
    /// Featurization-cache misses.
    pub cache_misses: u64,
    /// Queue-wait distribution (µs).
    pub queue_wait_us: HistogramSnapshot,
    /// Batch-size distribution.
    pub batch_size: HistogramSnapshot,
    /// Per-batch collection time (µs).
    pub drain_us: HistogramSnapshot,
    /// Per-batch featurization time (µs).
    pub featurize_us: HistogramSnapshot,
    /// Per-batch forward time (µs).
    pub forward_us: HistogramSnapshot,
    /// Per-batch response-delivery time (µs).
    pub respond_us: HistogramSnapshot,
    /// End-to-end latency distribution (µs).
    pub e2e_us: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// True when the snapshot reflects no traffic at all.
    pub fn is_empty(&self) -> bool {
        self.submitted == 0 && self.shed == 0
    }

    /// Cache hit rate in `[0, 1]` (0 when the cache saw no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} completed, {} shed, {} expired, {} unknown-adapter",
            self.submitted, self.completed, self.shed, self.expired, self.unknown_adapter
        )?;
        writeln!(
            f,
            "batches:  {} drained, size p50/p95/max = {}/{}/{} (mean {:.1})",
            self.batches,
            self.batch_size.p50,
            self.batch_size.p95,
            self.batch_size.max,
            self.batch_size.mean
        )?;
        writeln!(
            f,
            "cache:    {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate()
        )?;
        writeln!(
            f,
            "queue µs: p50 {} p95 {} p99 {} max {}",
            self.queue_wait_us.p50,
            self.queue_wait_us.p95,
            self.queue_wait_us.p99,
            self.queue_wait_us.max
        )?;
        writeln!(
            f,
            "stage µs: drain p50 {} / featurize p50 {} / forward p50 {} / respond p50 {} (per batch)",
            self.drain_us.p50, self.featurize_us.p50, self.forward_us.p50, self.respond_us.p50
        )?;
        write!(
            f,
            "e2e µs:   p50 {} p95 {} p99 {} max {}",
            self.e2e_us.p50, self.e2e_us.p95, self.e2e_us.p99, self.e2e_us.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds_error() {
        // Every value must land in a bucket whose upper bound is within
        // 12.5% above it (one sub-bucket of slack).
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12345, 1 << 40]) {
            let i = bucket_index(v);
            let hi = bucket_upper(i);
            assert!(hi >= v, "upper({i}) = {hi} < {v}");
            assert!(
                hi as f64 <= v as f64 * 1.125 + 1.0,
                "upper({i}) = {hi} too far above {v}"
            );
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "v={v} not below previous bound");
            }
        }
    }

    #[test]
    fn quantiles_on_uniform_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        // Bucket upper bounds overestimate by ≤ 12.5%.
        assert!((500..=563).contains(&s.p50), "p50 = {}", s.p50);
        assert!((950..=1069).contains(&s.p95), "p95 = {}", s.p95);
        assert!((990..=1114).contains(&s.p99), "p99 = {}", s.p99);
    }

    #[test]
    fn empty_snapshot_is_empty() {
        let m = ServeMetrics::new();
        let s = m.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.e2e_us.p99, 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = ServeMetrics::new();
        m.e2e_us.record(120);
        m.completed.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"completed\":1"));
        assert!(!format!("{s}").is_empty());
    }
}
