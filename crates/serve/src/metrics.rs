//! Serve-path metrics, served from the shared [`dace_obs`] registry.
//!
//! The counter/histogram implementations live in `dace-obs` (this module
//! used to own a private copy of the HDR-style histogram; it is the same
//! code, now name-keyed and shared workspace-wide). [`ServeMetrics`] is the
//! serve layer's *wiring*: it registers every serve metric under a stable
//! `serve_*` name in one [`MetricsRegistry`] and holds the resolved `Arc`
//! handles so the hot path never touches the registry lock. The registry
//! itself stays reachable through
//! [`DaceServer::metrics_registry`](crate::DaceServer::metrics_registry)
//! for Prometheus-text / JSON export.

use std::sync::Arc;

use serde::Serialize;

use dace_obs::{Counter, MetricsRegistry};
pub use dace_obs::{Histogram, HistogramSnapshot};

/// All serve-path instrumentation, shared between the scheduler, its worker
/// threads and whoever snapshots. Every field is an `Arc` handle into one
/// [`MetricsRegistry`], registered under the `serve_*` names listed at
/// [`ServeMetrics::register`].
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Requests admitted into the queue.
    pub submitted: Arc<Counter>,
    /// Requests answered with a prediction.
    pub completed: Arc<Counter>,
    /// Requests rejected at admission because the queue was full.
    pub shed: Arc<Counter>,
    /// Requests dropped because their deadline passed before a worker
    /// reached them.
    pub expired: Arc<Counter>,
    /// Requests naming an adapter the registry does not hold.
    pub unknown_adapter: Arc<Counter>,
    /// Requests rejected at admission by plan validation (NaN/Inf
    /// estimates, malformed tree, over the depth limit).
    pub invalid_plan: Arc<Counter>,
    /// Requests answered from the fallback estimator (`degraded: true`).
    pub degraded: Arc<Counter>,
    /// Forward-path panics caught per adapter group (the group is answered
    /// degraded, or failed with `ServeError::Internal` without a fallback).
    pub batch_panics: Arc<Counter>,
    /// Worker threads that died to a panic (injected or real).
    pub worker_panics: Arc<Counter>,
    /// Workers respawned by the supervisor.
    pub worker_restarts: Arc<Counter>,
    /// Supervisor respawn attempts that failed at `thread::spawn`.
    pub spawn_failures: Arc<Counter>,
    /// Times a spawn failure left the worker pool *empty* — the one
    /// condition that actually stops service. Deterministically zero unless
    /// the OS refuses threads; chaos CI asserts it stays zero.
    pub pool_exhausted: Arc<Counter>,
    /// Circuit-breaker trips (closed→open, or a failed probe re-opening).
    pub breaker_opened: Arc<Counter>,
    /// Circuit-breaker recoveries (half-open→closed).
    pub breaker_closed: Arc<Counter>,
    /// Batches drained by workers.
    pub batches: Arc<Counter>,
    /// Requests rejected at admission by a tenant's rate quota or
    /// in-flight cap.
    pub quota_rejected: Arc<Counter>,
    /// Requests rejected at admission for a malformed tenant id.
    pub invalid_tenant: Arc<Counter>,
    /// Requests answered zero-shot by the base model while the tenant's
    /// adapter was cold (loading, quarantined, or just kicked).
    pub cold_start: Arc<Counter>,
    /// Adapters paged in from checkpoints by the background loader.
    pub adapter_loads: Arc<Counter>,
    /// Adapter checkpoint loads that failed (missing, torn, injected).
    pub adapter_load_failures: Arc<Counter>,
    /// Resident adapters evicted to keep the hot set bounded.
    pub adapter_evictions: Arc<Counter>,
    /// Featurization-cache hits (shared with the cache itself).
    pub cache_hits: Arc<Counter>,
    /// Featurization-cache misses (shared with the cache itself).
    pub cache_misses: Arc<Counter>,
    /// Time each request spent queued before a worker drained it (µs).
    pub queue_wait_us: Arc<Histogram>,
    /// Drained batch sizes (requests per batch).
    pub batch_size: Arc<Histogram>,
    /// Per-batch collection time: first request drained to batch dispatched
    /// (µs) — how much of the `max_wait` window batches actually pay.
    pub drain_us: Arc<Histogram>,
    /// Per-group fingerprint + cache probe time (µs); only recorded when
    /// stage timing is on.
    pub cache_lookup_us: Arc<Histogram>,
    /// Per-batch featurization time, cache misses included (µs).
    pub featurize_us: Arc<Histogram>,
    /// Per-batch packed forward-pass time (µs).
    pub forward_us: Arc<Histogram>,
    /// Attention share of the forward pass (µs); only recorded when stage
    /// timing is on.
    pub attention_us: Arc<Histogram>,
    /// MLP share of the forward pass (µs); only recorded when stage timing
    /// is on.
    pub mlp_us: Arc<Histogram>,
    /// Per-batch response-delivery time: client handoff including wakeups
    /// (µs).
    pub respond_us: Arc<Histogram>,
    /// End-to-end request latency, admission to response (µs).
    pub e2e_us: Arc<Histogram>,
}

impl ServeMetrics {
    /// Fresh metrics in a private registry (tests, standalone use). Servers
    /// use [`ServeMetrics::register`] with a registry they expose.
    pub fn new() -> ServeMetrics {
        ServeMetrics::register(&MetricsRegistry::new())
    }

    /// Register every serve metric in `registry` (names: `serve_*_total`
    /// counters, `serve_*_us` / `serve_batch_size` histograms) and return
    /// the resolved handles. Registering twice against the same registry
    /// yields handles to the *same* underlying metrics.
    pub fn register(registry: &MetricsRegistry) -> ServeMetrics {
        for (name, help) in SERVE_METRIC_HELP {
            registry.describe(name, help);
        }
        ServeMetrics {
            submitted: registry.counter("serve_submitted_total"),
            completed: registry.counter("serve_completed_total"),
            shed: registry.counter("serve_shed_total"),
            expired: registry.counter("serve_expired_total"),
            unknown_adapter: registry.counter("serve_unknown_adapter_total"),
            invalid_plan: registry.counter("serve_invalid_plan_total"),
            degraded: registry.counter("serve_degraded_total"),
            batch_panics: registry.counter("serve_batch_panics_total"),
            worker_panics: registry.counter("serve_worker_panics_total"),
            worker_restarts: registry.counter("serve_worker_restarts_total"),
            spawn_failures: registry.counter("serve_spawn_failures_total"),
            pool_exhausted: registry.counter("serve_pool_exhausted_total"),
            breaker_opened: registry.counter("serve_breaker_opened_total"),
            breaker_closed: registry.counter("serve_breaker_closed_total"),
            batches: registry.counter("serve_batches_total"),
            quota_rejected: registry.counter("serve_quota_rejected_total"),
            invalid_tenant: registry.counter("serve_invalid_tenant_total"),
            cold_start: registry.counter("serve_cold_start_total"),
            adapter_loads: registry.counter("serve_adapter_loads_total"),
            adapter_load_failures: registry.counter("serve_adapter_load_failures_total"),
            adapter_evictions: registry.counter("serve_adapter_evictions_total"),
            cache_hits: registry.counter("serve_cache_hits_total"),
            cache_misses: registry.counter("serve_cache_misses_total"),
            queue_wait_us: registry.histogram("serve_queue_wait_us"),
            batch_size: registry.histogram("serve_batch_size"),
            drain_us: registry.histogram("serve_drain_us"),
            cache_lookup_us: registry.histogram("serve_cache_lookup_us"),
            featurize_us: registry.histogram("serve_featurize_us"),
            forward_us: registry.histogram("serve_forward_us"),
            attention_us: registry.histogram("serve_attention_us"),
            mlp_us: registry.histogram("serve_mlp_us"),
            respond_us: registry.histogram("serve_respond_us"),
            e2e_us: registry.histogram("serve_e2e_us"),
        }
    }

    /// Snapshot every counter and histogram (cache counters included — they
    /// are shared with the cache itself).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            shed: self.shed.get(),
            expired: self.expired.get(),
            unknown_adapter: self.unknown_adapter.get(),
            invalid_plan: self.invalid_plan.get(),
            degraded: self.degraded.get(),
            batch_panics: self.batch_panics.get(),
            worker_panics: self.worker_panics.get(),
            worker_restarts: self.worker_restarts.get(),
            spawn_failures: self.spawn_failures.get(),
            pool_exhausted: self.pool_exhausted.get(),
            breaker_opened: self.breaker_opened.get(),
            breaker_closed: self.breaker_closed.get(),
            batches: self.batches.get(),
            quota_rejected: self.quota_rejected.get(),
            invalid_tenant: self.invalid_tenant.get(),
            cold_start: self.cold_start.get(),
            adapter_loads: self.adapter_loads.get(),
            adapter_load_failures: self.adapter_load_failures.get(),
            adapter_evictions: self.adapter_evictions.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            queue_wait_us: self.queue_wait_us.snapshot(),
            batch_size: self.batch_size.snapshot(),
            drain_us: self.drain_us.snapshot(),
            cache_lookup_us: self.cache_lookup_us.snapshot(),
            featurize_us: self.featurize_us.snapshot(),
            forward_us: self.forward_us.snapshot(),
            attention_us: self.attention_us.snapshot(),
            mlp_us: self.mlp_us.snapshot(),
            respond_us: self.respond_us.snapshot(),
            e2e_us: self.e2e_us.snapshot(),
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

/// `# HELP` text for every serve series, registered alongside the metrics
/// so the Prometheus export is self-describing.
const SERVE_METRIC_HELP: &[(&str, &str)] = &[
    ("serve_submitted_total", "Requests admitted into the queue."),
    (
        "serve_completed_total",
        "Requests answered with a prediction.",
    ),
    (
        "serve_shed_total",
        "Requests rejected at admission because the queue was full.",
    ),
    (
        "serve_expired_total",
        "Requests dropped because their deadline passed in queue.",
    ),
    (
        "serve_unknown_adapter_total",
        "Requests naming an adapter the registry does not hold.",
    ),
    (
        "serve_invalid_plan_total",
        "Requests rejected by admission-time plan validation.",
    ),
    (
        "serve_degraded_total",
        "Requests answered from the fallback estimator (degraded).",
    ),
    (
        "serve_batch_panics_total",
        "Forward-path panics caught per adapter group.",
    ),
    (
        "serve_worker_panics_total",
        "Worker threads that died to a panic.",
    ),
    (
        "serve_worker_restarts_total",
        "Workers respawned by the supervisor.",
    ),
    (
        "serve_spawn_failures_total",
        "Supervisor respawn attempts that failed at thread::spawn.",
    ),
    (
        "serve_pool_exhausted_total",
        "Spawn failures that left the worker pool empty.",
    ),
    (
        "serve_breaker_opened_total",
        "Circuit-breaker trips (closed to open, or a failed probe).",
    ),
    (
        "serve_breaker_closed_total",
        "Circuit-breaker recoveries (half-open to closed).",
    ),
    ("serve_batches_total", "Batches drained by workers."),
    (
        "serve_quota_rejected_total",
        "Requests rejected by a tenant's rate quota or in-flight cap.",
    ),
    (
        "serve_invalid_tenant_total",
        "Requests rejected at admission for a malformed tenant id.",
    ),
    (
        "serve_cold_start_total",
        "Zero-shot base-model answers while the tenant adapter was cold.",
    ),
    (
        "serve_adapter_loads_total",
        "Adapters paged in from checkpoints by the background loader.",
    ),
    (
        "serve_adapter_load_failures_total",
        "Adapter checkpoint loads that failed (missing, torn, injected).",
    ),
    (
        "serve_adapter_evictions_total",
        "Resident adapters evicted to keep the hot set bounded.",
    ),
    ("serve_cache_hits_total", "Featurization-cache hits."),
    ("serve_cache_misses_total", "Featurization-cache misses."),
    (
        "serve_queue_wait_us",
        "Time each request spent queued before a worker drained it (us).",
    ),
    (
        "serve_batch_size",
        "Drained batch sizes (requests per batch).",
    ),
    (
        "serve_drain_us",
        "Per-batch collection time: first request drained to dispatch (us).",
    ),
    (
        "serve_cache_lookup_us",
        "Per-group fingerprint and cache-probe time (us).",
    ),
    (
        "serve_featurize_us",
        "Per-batch featurization time, cache misses included (us).",
    ),
    (
        "serve_forward_us",
        "Per-batch packed forward-pass time (us).",
    ),
    (
        "serve_attention_us",
        "Attention share of the forward pass (us).",
    ),
    ("serve_mlp_us", "MLP share of the forward pass (us)."),
    (
        "serve_respond_us",
        "Per-batch response-delivery time including wakeups (us).",
    ),
    (
        "serve_e2e_us",
        "End-to-end request latency, admission to response (us).",
    ),
];

/// Point-in-time view of the whole serve path, printable and serializable
/// (what `serve_bench` reports and CI asserts on).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests load-shed at admission.
    pub shed: u64,
    /// Requests expired in queue.
    pub expired: u64,
    /// Requests for unknown adapters.
    pub unknown_adapter: u64,
    /// Requests rejected by plan validation at admission.
    pub invalid_plan: u64,
    /// Requests answered from the fallback (`degraded: true`).
    pub degraded: u64,
    /// Forward-path panics caught per group.
    pub batch_panics: u64,
    /// Worker threads lost to panics.
    pub worker_panics: u64,
    /// Workers respawned by the supervisor.
    pub worker_restarts: u64,
    /// Failed respawn attempts.
    pub spawn_failures: u64,
    /// Spawn failures that left the pool empty (service-stopping; chaos CI
    /// asserts zero).
    pub pool_exhausted: u64,
    /// Circuit-breaker trips.
    pub breaker_opened: u64,
    /// Circuit-breaker recoveries.
    pub breaker_closed: u64,
    /// Batches drained.
    pub batches: u64,
    /// Requests rejected by a tenant quota or in-flight cap.
    pub quota_rejected: u64,
    /// Requests rejected for a malformed tenant id.
    pub invalid_tenant: u64,
    /// Zero-shot answers served while the tenant adapter was cold.
    pub cold_start: u64,
    /// Adapters paged in by the background loader.
    pub adapter_loads: u64,
    /// Adapter checkpoint loads that failed.
    pub adapter_load_failures: u64,
    /// Resident adapters evicted over the hot-set bound.
    pub adapter_evictions: u64,
    /// Featurization-cache hits.
    pub cache_hits: u64,
    /// Featurization-cache misses.
    pub cache_misses: u64,
    /// Queue-wait distribution (µs).
    pub queue_wait_us: HistogramSnapshot,
    /// Batch-size distribution.
    pub batch_size: HistogramSnapshot,
    /// Per-batch collection time (µs).
    pub drain_us: HistogramSnapshot,
    /// Per-group cache-probe time (µs; zero when stage timing is off).
    pub cache_lookup_us: HistogramSnapshot,
    /// Per-batch featurization time (µs).
    pub featurize_us: HistogramSnapshot,
    /// Per-batch forward time (µs).
    pub forward_us: HistogramSnapshot,
    /// Attention share of forward (µs; zero when stage timing is off).
    pub attention_us: HistogramSnapshot,
    /// MLP share of forward (µs; zero when stage timing is off).
    pub mlp_us: HistogramSnapshot,
    /// Per-batch response-delivery time (µs).
    pub respond_us: HistogramSnapshot,
    /// End-to-end latency distribution (µs).
    pub e2e_us: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// True when the snapshot reflects no traffic at all.
    pub fn is_empty(&self) -> bool {
        self.submitted == 0 && self.shed == 0
    }

    /// Fraction of *answered* requests that came from the fallback, in
    /// `[0, 1]` (0 with no completions). Degraded answers are included in
    /// `completed` — they are answers, just flagged ones.
    pub fn degraded_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.degraded as f64 / self.completed as f64
        }
    }

    /// Answered fraction of admitted-or-shed traffic, in `[0, 1]` — the
    /// chaos bench's availability number. Degraded answers count; shed,
    /// expired and failed requests do not.
    pub fn availability(&self) -> f64 {
        let offered = self.submitted + self.shed;
        if offered == 0 {
            1.0
        } else {
            self.completed as f64 / offered as f64
        }
    }

    /// Cache hit rate in `[0, 1]` (0 when the cache saw no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} completed, {} shed, {} expired, {} unknown-adapter",
            self.submitted, self.completed, self.shed, self.expired, self.unknown_adapter
        )?;
        writeln!(
            f,
            "batches:  {} drained, size p50/p95/max = {}/{}/{} (mean {:.1})",
            self.batches,
            self.batch_size.p50,
            self.batch_size.p95,
            self.batch_size.max,
            self.batch_size.mean
        )?;
        writeln!(
            f,
            "faults:   {} degraded, {} invalid-plan, {} batch-panics, {} worker-panics, {} restarts ({} spawn-fail, {} pool-exhausted), breaker {}↑/{}↓",
            self.degraded,
            self.invalid_plan,
            self.batch_panics,
            self.worker_panics,
            self.worker_restarts,
            self.spawn_failures,
            self.pool_exhausted,
            self.breaker_opened,
            self.breaker_closed
        )?;
        writeln!(
            f,
            "tenancy:  {} quota-rejected, {} invalid-tenant, {} cold-start, adapters {} loaded / {} failed / {} evicted",
            self.quota_rejected,
            self.invalid_tenant,
            self.cold_start,
            self.adapter_loads,
            self.adapter_load_failures,
            self.adapter_evictions
        )?;
        writeln!(
            f,
            "cache:    {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate()
        )?;
        writeln!(
            f,
            "queue µs: p50 {} p95 {} p99 {} max {}",
            self.queue_wait_us.p50,
            self.queue_wait_us.p95,
            self.queue_wait_us.p99,
            self.queue_wait_us.max
        )?;
        writeln!(
            f,
            "stage µs: drain p50 {} / featurize p50 {} / forward p50 {} (attn {} + mlp {}) / respond p50 {} (per batch)",
            self.drain_us.p50,
            self.featurize_us.p50,
            self.forward_us.p50,
            self.attention_us.p50,
            self.mlp_us.p50,
            self.respond_us.p50
        )?;
        write!(
            f,
            "e2e µs:   p50 {} p95 {} p99 {} max {}",
            self.e2e_us.p50, self.e2e_us.p95, self.e2e_us.p99, self.e2e_us.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_empty() {
        let m = ServeMetrics::new();
        let s = m.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.e2e_us.p99, 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = ServeMetrics::new();
        m.e2e_us.record(120);
        m.completed.inc();
        let s = m.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"completed\":1"));
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn registering_twice_shares_the_metrics() {
        let registry = MetricsRegistry::new();
        let a = ServeMetrics::register(&registry);
        let b = ServeMetrics::register(&registry);
        a.submitted.inc();
        a.e2e_us.record(10);
        assert_eq!(b.submitted.get(), 1);
        assert_eq!(b.e2e_us.count(), 1);
    }

    #[test]
    fn registry_export_carries_serve_names() {
        let registry = MetricsRegistry::new();
        let m = ServeMetrics::register(&registry);
        m.completed.inc();
        m.e2e_us.record(250);
        let text = registry.prometheus_text();
        assert!(text.contains("serve_completed_total 1"));
        assert!(text.contains("serve_e2e_us_count 1"));
        let parsed = dace_obs::parse_prometheus_text(&text);
        assert_eq!(parsed["serve_completed_total"], 1.0);
        assert!(parsed.contains_key("serve_e2e_us{quantile=\"0.99\"}"));
    }

    #[test]
    fn every_serve_series_carries_registered_help() {
        let registry = MetricsRegistry::new();
        let _m = ServeMetrics::register(&registry);
        let text = registry.prometheus_text();
        for (name, help) in SERVE_METRIC_HELP {
            assert!(
                text.contains(&format!("# HELP {name} {help}")),
                "missing registered HELP for {name}"
            );
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "missing TYPE for {name}"
            );
        }
        // Hygiene: the round-trip parser consumes every sample line.
        let parsed = dace_obs::parse_prometheus_text(&text);
        let samples = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .count();
        assert_eq!(samples, parsed.len());
    }
}
