//! Adapter paging: a bounded hot set of resident per-tenant adapters,
//! LRU eviction, and a background loader that pulls cold adapters from
//! validated `persist` checkpoints.
//!
//! The paper's transfer claim, taken to production, means one server
//! fronting thousands of per-(database, machine) LoRA adapters — far
//! more than fit in memory at once. The pager keeps a small resident set
//! and treats everything else as *cold*: the first request for a cold
//! tenant kicks an asynchronous checkpoint load and is answered
//! immediately, zero-shot, by the shared base model with
//! `degraded: true`. Cold tenants are **never blocked and never shed** —
//! degraded-but-answered is the contract (Hilprecht et al.'s zero-shot
//! setting is exactly this cold-start path).
//!
//! Load failures (missing file, torn checkpoint, injected
//! [`FaultSite::AdapterLoadCorrupt`]) quarantine the tenant for a retry
//! cooldown instead of hot-looping the loader; the tenant keeps being
//! served zero-shot throughout. Every transition — load, eviction,
//! failure — lands in the lifecycle journal and the serve metrics.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fault::{FaultInjector, FaultSite};
use crate::health::HealthPlane;
use crate::metrics::ServeMetrics;
use crate::registry::{ModelRegistry, ModelVersion};
use dace_obs::LifecycleEvent;

/// Paging policy: where checkpoints live and how many adapters stay hot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagerConfig {
    /// Directory holding one `<tenant>.ckpt` checkpoint per tenant
    /// (written by `dace_core::save_checkpoint`).
    pub dir: PathBuf,
    /// Most adapters resident at once; the least-recently-used is
    /// evicted beyond this. Minimum 1.
    pub hot_set: usize,
    /// How long a failed load quarantines the tenant before the next
    /// request retries it.
    pub retry_cooldown: Duration,
}

impl PagerConfig {
    /// Defaults: 8 resident adapters, 200 ms retry cooldown.
    pub fn new(dir: impl Into<PathBuf>) -> PagerConfig {
        PagerConfig {
            dir: dir.into(),
            hot_set: 8,
            retry_cooldown: Duration::from_millis(200),
        }
    }
}

/// Outcome of a page lookup on the request path.
#[derive(Debug, Clone)]
pub(crate) enum PagedResolve {
    /// The tenant's adapter is resident — serve with it.
    Resident(Arc<ModelVersion>),
    /// Not resident (loading, quarantined, or just kicked) — serve this
    /// request zero-shot from the base model, flagged degraded.
    Cold,
}

#[derive(Debug)]
struct PagerState {
    /// Resident adapters with their last-touch stamp (monotone `clock`).
    resident: HashMap<Arc<str>, (Arc<ModelVersion>, u64)>,
    /// Tenants with a load in flight on the loader thread.
    loading: HashSet<Arc<str>>,
    /// Tenants whose last load failed, and when — retried after the
    /// cooldown.
    failed: HashMap<Arc<str>, Instant>,
    clock: u64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The paging engine: request-path `resolve` plus one background loader
/// thread feeding the resident set.
#[derive(Debug)]
pub struct AdapterPager {
    config: PagerConfig,
    state: Mutex<PagerState>,
    tx: Mutex<Option<mpsc::Sender<Arc<str>>>>,
    loader: Mutex<Option<JoinHandle<()>>>,
}

impl AdapterPager {
    /// Build the pager and start its loader thread.
    pub(crate) fn start(
        config: PagerConfig,
        registry: Arc<ModelRegistry>,
        injector: Arc<FaultInjector>,
        health: Arc<HealthPlane>,
        metrics: Arc<ServeMetrics>,
    ) -> Arc<AdapterPager> {
        let (tx, rx) = mpsc::channel::<Arc<str>>();
        let pager = Arc::new(AdapterPager {
            config,
            state: Mutex::new(PagerState {
                resident: HashMap::new(),
                loading: HashSet::new(),
                failed: HashMap::new(),
                clock: 0,
            }),
            tx: Mutex::new(Some(tx)),
            loader: Mutex::new(None),
        });
        let worker = Arc::clone(&pager);
        let handle = std::thread::Builder::new()
            .name("dace-adapter-pager".to_string())
            .spawn(move || {
                while let Ok(name) = rx.recv() {
                    worker.load_one(&name, &registry, &injector, &health, &metrics);
                }
            })
            .expect("spawn adapter pager thread");
        *lock(&pager.loader) = Some(handle);
        pager
    }

    /// Request-path lookup. Resident hits refresh the LRU stamp; misses
    /// kick (at most) one asynchronous load and report [`PagedResolve::Cold`]
    /// so the caller answers zero-shot without ever blocking on I/O.
    pub(crate) fn resolve(&self, tenant: &Arc<str>) -> PagedResolve {
        let mut st = lock(&self.state);
        st.clock += 1;
        let stamp = st.clock;
        if let Some((version, touched)) = st.resident.get_mut(tenant) {
            *touched = stamp;
            return PagedResolve::Resident(Arc::clone(version));
        }
        if st.loading.contains(tenant) {
            return PagedResolve::Cold;
        }
        if let Some(&when) = st.failed.get(tenant) {
            if when.elapsed() < self.config.retry_cooldown {
                return PagedResolve::Cold;
            }
            st.failed.remove(tenant);
        }
        st.loading.insert(Arc::clone(tenant));
        drop(st);
        let send_failed = match lock(&self.tx).as_ref() {
            Some(tx) => tx.send(Arc::clone(tenant)).is_err(),
            None => true,
        };
        if send_failed {
            // Loader is gone (shutdown): keep answering zero-shot.
            lock(&self.state).loading.remove(tenant);
        }
        PagedResolve::Cold
    }

    /// Loader-thread body for one tenant: read and validate the
    /// checkpoint, publish a fresh [`ModelVersion`], evict over-budget
    /// residents oldest-first.
    fn load_one(
        &self,
        name: &Arc<str>,
        registry: &ModelRegistry,
        injector: &FaultInjector,
        health: &HealthPlane,
        metrics: &ServeMetrics,
    ) {
        let path = self.config.dir.join(format!("{name}.ckpt"));
        let loaded = if injector.should_fire(FaultSite::AdapterLoadCorrupt) {
            Err("injected checkpoint corruption".to_string())
        } else {
            dace_core::load_checkpoint(&path).map_err(|e| e.to_string())
        };
        match loaded {
            Ok(est) => {
                let version = registry.allocate_version();
                let model = Arc::new(ModelVersion::new(est, version, Some(name.to_string())));
                let mut evicted = Vec::new();
                {
                    let mut st = lock(&self.state);
                    st.loading.remove(name);
                    st.clock += 1;
                    let stamp = st.clock;
                    st.resident
                        .insert(Arc::clone(name), (Arc::clone(&model), stamp));
                    while st.resident.len() > self.config.hot_set.max(1) {
                        let Some(coldest) = st
                            .resident
                            .iter()
                            .min_by_key(|(_, (_, touched))| *touched)
                            .map(|(k, _)| Arc::clone(k))
                        else {
                            break;
                        };
                        st.resident.remove(&coldest);
                        evicted.push((coldest, st.resident.len() as u64));
                    }
                }
                metrics.adapter_loads.inc();
                health.emit(
                    0,
                    LifecycleEvent::AdapterLoaded {
                        tenant: name.to_string(),
                        version,
                    },
                );
                for (tenant, resident) in evicted {
                    metrics.adapter_evictions.inc();
                    health.emit(
                        0,
                        LifecycleEvent::AdapterEvicted {
                            tenant: tenant.to_string(),
                            resident,
                        },
                    );
                }
            }
            Err(reason) => {
                {
                    let mut st = lock(&self.state);
                    st.loading.remove(name);
                    st.failed.insert(Arc::clone(name), Instant::now());
                }
                metrics.adapter_load_failures.inc();
                health.emit(
                    0,
                    LifecycleEvent::AdapterLoadFailed {
                        tenant: name.to_string(),
                        reason,
                    },
                );
            }
        }
    }

    /// Paging policy in effect.
    pub fn config(&self) -> &PagerConfig {
        &self.config
    }

    /// Whether `tenant`'s adapter is currently resident.
    pub fn is_resident(&self, tenant: &str) -> bool {
        lock(&self.state).resident.contains_key(tenant)
    }

    /// Number of resident adapters.
    pub fn resident_len(&self) -> usize {
        lock(&self.state).resident.len()
    }

    /// Whether `tenant` is quarantined after a failed load.
    pub fn is_failed(&self, tenant: &str) -> bool {
        lock(&self.state).failed.contains_key(tenant)
    }

    /// Stop the loader: close the channel and join the thread. Idempotent.
    pub(crate) fn stop(&self) {
        drop(lock(&self.tx).take());
        if let Some(h) = lock(&self.loader).take() {
            let _ = h.join();
        }
    }
}

impl Drop for AdapterPager {
    fn drop(&mut self) {
        // Best-effort: the server calls `stop()` on shutdown; this covers
        // pagers dropped without one (tests, build failures).
        drop(lock(&self.tx).take());
        if let Some(h) = lock(&self.loader).take() {
            if std::thread::current().id() != h.thread().id() {
                let _ = h.join();
            }
        }
    }
}
