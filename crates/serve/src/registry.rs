//! Hot-swappable model registry: the pretrained base model plus named
//! per-database LoRA adapters, swappable under live traffic with **zero
//! locks on the read path**.
//!
//! The swap cell is an `arc-swap`-style atomic pointer hand-rolled on safe
//! primitives: published versions live in an append-only slot table
//! (`OnceLock<Arc<ModelVersion>>` entries) and a `latest` atomic index
//! points at the newest one. Readers do one `Acquire` load plus one `Arc`
//! clone — no locks, no spinning, and no reclamation problem because a slot,
//! once set, is immutable; the `Arc` in it is freed when the cell drops and
//! every in-flight reader releases its clone. Writers append with a
//! `fetch_add` slot claim and publish with `fetch_max` (Release), so `latest`
//! is monotone even under racing writers and can never expose an unset slot.
//!
//! The cost of this safety is a bounded version history per cell
//! ([`RegistryConfig::versions_per_slot`], default 1024 swaps) and ~1 MB of
//! retained memory per published version — models are tiny (Table II:
//! 0.06 MB) so retaining every version until the cell drops is cheaper than
//! any reclamation scheme that would need `unsafe`.
//!
//! **Semantics:** a published version is an immutable snapshot — installing
//! an adapter materializes `base + ΔW` *at install time*. A later
//! [`ModelRegistry::swap_base`] does not rebuild existing adapter versions;
//! re-install an adapter to rebase it. Every response carries the version id
//! that served it, so clients can always tell which snapshot answered.

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use dace_core::{AdapterError, CheckpointError, DaceEstimator, LoraAdapter, QuantizedEstimator};

/// One immutable published model snapshot.
#[derive(Debug)]
pub struct ModelVersion {
    /// The inference-only estimator (optimizer state detached).
    pub estimator: DaceEstimator,
    /// The int8 fast-tier twin, re-quantized from `estimator` at publish
    /// time. Every path that creates a version funnels through
    /// [`ModelVersion::new`], so the twin can never lag the f32 weights —
    /// including adaptive-loop promotions and checkpoint reloads.
    pub quantized: QuantizedEstimator,
    /// Registry-global monotone version id; recorded on every response
    /// served by this snapshot.
    pub version: u64,
    /// Adapter name, or `None` for the base model.
    pub adapter: Option<String>,
}

impl ModelVersion {
    /// The single construction path for published snapshots: detaches the
    /// estimator for serving and builds the quantized twin. Quantization is
    /// a swap-time cost (one pass over ~0.12 MB of weights), never paid on
    /// the request path.
    pub fn new(est: DaceEstimator, version: u64, adapter: Option<String>) -> ModelVersion {
        let estimator = est.serving_clone();
        let quantized = QuantizedEstimator::from_estimator(&estimator);
        ModelVersion {
            estimator,
            quantized,
            version,
            adapter,
        }
    }
}

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No adapter registered under this name.
    UnknownAdapter(String),
    /// The cell's append-only version table is full; raise
    /// `versions_per_slot`.
    VersionCapacityExhausted,
    /// The adapter name table is full; raise `max_adapters`.
    AdapterCapacityExhausted,
    /// The adapter's weights do not fit the current base model.
    Incompatible(AdapterError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownAdapter(n) => write!(f, "unknown adapter {n:?}"),
            RegistryError::VersionCapacityExhausted => {
                write!(f, "version table full (raise versions_per_slot)")
            }
            RegistryError::AdapterCapacityExhausted => {
                write!(f, "adapter table full (raise max_adapters)")
            }
            RegistryError::Incompatible(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Why a checkpoint-driven base reload failed. In either case the registry
/// is untouched: the last good version keeps serving.
#[derive(Debug)]
pub enum ReloadError {
    /// The checkpoint file was missing, torn, corrupt, or unparseable
    /// (typed detail inside — this is the path a crashed writer or bit rot
    /// lands on).
    Checkpoint(CheckpointError),
    /// The checkpoint was valid but the registry refused the swap (version
    /// table full).
    Registry(RegistryError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            ReloadError::Registry(e) => write!(f, "registry refused reload: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Checkpoint(e) => Some(e),
            ReloadError::Registry(e) => Some(e),
        }
    }
}

/// Capacity knobs for [`ModelRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Distinct adapter names the registry can hold.
    pub max_adapters: usize,
    /// Hot swaps each cell (base or one adapter) can absorb over the
    /// registry's lifetime.
    pub versions_per_slot: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            max_adapters: 64,
            versions_per_slot: 1024,
        }
    }
}

/// The lock-free swap cell: append-only slot table + monotone latest index.
#[derive(Debug)]
struct VersionCell {
    slots: Box<[OnceLock<Arc<ModelVersion>>]>,
    latest: AtomicUsize,
    next: AtomicUsize,
}

impl VersionCell {
    /// A cell with `first` already published at slot 0.
    fn new(capacity: usize, first: Arc<ModelVersion>) -> VersionCell {
        let slots: Box<[OnceLock<Arc<ModelVersion>>]> =
            (0..capacity.max(1)).map(|_| OnceLock::new()).collect();
        slots[0].set(first).expect("fresh cell");
        VersionCell {
            slots,
            latest: AtomicUsize::new(0),
            next: AtomicUsize::new(1),
        }
    }

    /// Publish a new version. Safe under racing writers: each claims its own
    /// slot, sets it, then advances `latest` monotonically (Release) so a
    /// reader that observes the index also observes the slot contents.
    fn publish(&self, v: Arc<ModelVersion>) -> Result<(), RegistryError> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() {
            return Err(RegistryError::VersionCapacityExhausted);
        }
        self.slots[idx].set(v).expect("slot claimed exclusively");
        self.latest.fetch_max(idx, Ordering::Release);
        Ok(())
    }

    /// The newest published version: one Acquire load + one Arc clone.
    fn load(&self) -> Arc<ModelVersion> {
        let idx = self.latest.load(Ordering::Acquire);
        self.slots[idx]
            .get()
            .expect("latest always points at a set slot")
            .clone()
    }
}

/// The serving model registry: one base-model cell plus a lock-free
/// append-only table of named adapter cells.
///
/// The read path ([`ModelRegistry::resolve`]) takes no locks anywhere:
/// adapter lookup is a linear scan over `OnceLock` name slots (registries
/// hold tens of adapters, and the scan touches only published entries), and
/// the cell load is an atomic index read. Registration and swapping are
/// control-path operations serialized by a mutex.
#[derive(Debug)]
pub struct ModelRegistry {
    base: VersionCell,
    adapters: Box<[OnceLock<(String, VersionCell)>]>,
    adapter_len: AtomicUsize,
    /// Serializes registration/installation (not resolution).
    install_lock: Mutex<()>,
    version_counter: AtomicU64,
    config: RegistryConfig,
}

impl ModelRegistry {
    /// Registry serving `base` as version 0, with default capacities.
    pub fn new(base: DaceEstimator) -> ModelRegistry {
        ModelRegistry::with_config(base, RegistryConfig::default())
    }

    /// Registry with explicit capacity knobs.
    pub fn with_config(base: DaceEstimator, config: RegistryConfig) -> ModelRegistry {
        let first = Arc::new(ModelVersion::new(base, 0, None));
        ModelRegistry {
            base: VersionCell::new(config.versions_per_slot, first),
            adapters: (0..config.max_adapters).map(|_| OnceLock::new()).collect(),
            adapter_len: AtomicUsize::new(0),
            install_lock: Mutex::new(()),
            version_counter: AtomicU64::new(1),
            config,
        }
    }

    fn next_version(&self) -> u64 {
        self.version_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Reserve a version number for a snapshot published outside the
    /// registry's own install paths (the adapter pager builds
    /// `ModelVersion`s from paged-in checkpoints but shares this counter
    /// so version numbers stay globally unique and monotone).
    pub(crate) fn allocate_version(&self) -> u64 {
        self.next_version()
    }

    /// Lock-free lookup of an adapter's cell.
    fn find(&self, name: &str) -> Option<&VersionCell> {
        let len = self.adapter_len.load(Ordering::Acquire);
        self.adapters[..len].iter().find_map(|slot| {
            let (n, cell) = slot.get()?;
            (n == name).then_some(cell)
        })
    }

    /// Resolve a request's model: the named adapter's newest version, or the
    /// newest base version when `name` is `None`. Zero locks.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<ModelVersion>, RegistryError> {
        match name {
            None => Ok(self.base.load()),
            Some(n) => self
                .find(n)
                .map(VersionCell::load)
                .ok_or_else(|| RegistryError::UnknownAdapter(n.to_string())),
        }
    }

    /// The newest base-model version.
    pub fn base(&self) -> Arc<ModelVersion> {
        self.base.load()
    }

    /// Hot-swap the base model under live traffic. In-flight batches keep
    /// the version they resolved; new resolutions see the new base. Existing
    /// adapter versions are *not* rebased (see module docs).
    pub fn swap_base(&self, est: DaceEstimator) -> Result<u64, RegistryError> {
        // Poison-recovering: the guarded section only appends immutable
        // snapshots, so a panicking installer cannot leave partial state —
        // later installers may proceed.
        let _g = self
            .install_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let version = self.next_version();
        self.base
            .publish(Arc::new(ModelVersion::new(est, version, None)))?;
        Ok(version)
    }

    /// Install `fine_tune_lora` output for a database: materializes
    /// `current base + adapter` and publishes it under `name` (creating the
    /// name on first install, hot-swapping afterwards). Returns the new
    /// version id.
    pub fn install_adapter(&self, name: &str, adapter: &LoraAdapter) -> Result<u64, RegistryError> {
        let est = self
            .base
            .load()
            .estimator
            .with_adapter(adapter)
            .map_err(RegistryError::Incompatible)?;
        self.install_estimator(name, est)
    }

    /// Publish a full estimator under an adapter name (the escape hatch for
    /// adapters fine-tuned elsewhere against a matching base).
    pub fn install_estimator(&self, name: &str, est: DaceEstimator) -> Result<u64, RegistryError> {
        let _g = self
            .install_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let version = self.next_version();
        let snapshot = Arc::new(ModelVersion::new(est, version, Some(name.to_string())));
        if let Some(cell) = self.find(name) {
            cell.publish(snapshot)?;
            return Ok(version);
        }
        // First install under this name: claim the next table slot. The
        // install lock serializes writers; `adapter_len` publishes with
        // Release so lock-free readers observe the filled slot.
        let len = self.adapter_len.load(Ordering::Relaxed);
        if len >= self.adapters.len() {
            return Err(RegistryError::AdapterCapacityExhausted);
        }
        self.adapters[len]
            .set((
                name.to_string(),
                VersionCell::new(self.config.versions_per_slot, snapshot),
            ))
            .unwrap_or_else(|_| unreachable!("slot claimed under install lock"));
        self.adapter_len.store(len + 1, Ordering::Release);
        Ok(version)
    }

    /// Hot-swap the base model from an on-disk checkpoint written by
    /// [`dace_core::save_checkpoint`]. The crash-safety contract lives
    /// here: a torn, truncated, bit-flipped or unparseable file returns a
    /// typed [`ReloadError`] and the registry **keeps serving the last
    /// good version** — a corrupt checkpoint degrades a reload into a
    /// no-op, never into an outage or a silently-wrong model.
    pub fn swap_base_from_checkpoint(&self, path: &Path) -> Result<u64, ReloadError> {
        let est = dace_core::load_checkpoint(path).map_err(ReloadError::Checkpoint)?;
        self.swap_base(est).map_err(ReloadError::Registry)
    }

    /// Registered adapter names, in installation order.
    pub fn adapter_names(&self) -> Vec<String> {
        let len = self.adapter_len.load(Ordering::Acquire);
        self.adapters[..len]
            .iter()
            .filter_map(|s| s.get().map(|(n, _)| n.clone()))
            .collect()
    }

    /// Versions published so far (across base and all adapters).
    pub fn versions_published(&self) -> u64 {
        self.version_counter.load(Ordering::Relaxed)
    }
}
