//! The micro-batching scheduler and the [`DaceServer`] facade.
//!
//! Requests enter a **bounded** MPSC queue (`std::sync::mpsc::sync_channel`)
//! and are drained by worker threads into [`PackedBatch`]es under a
//! `max_batch` / `max_wait` / `min_fill` policy: a worker blocks for the
//! first request, splices in everything already queued, and dispatches as
//! soon as the batch is full, full *enough* (`min_fill`), or the wait
//! window closes. Under load the window never opens because the backlog
//! fills the batch instantly, so batching adds latency only when the
//! system is idle enough not to care — and `min_fill` keeps closed-loop
//! clients (all blocked on responses, so no arrivals are even possible)
//! from paying the window at all. Admission control keeps tail latency degrading gracefully
//! instead of collapsing: a full queue sheds the request immediately with
//! [`ServeError::Overloaded`] (the client can retry against a replica),
//! malformed or hostile plans are rejected up front with
//! [`ServeError::InvalidPlan`], and requests whose deadline passed while
//! queued are dropped with [`ServeError::DeadlineExceeded`] before any work
//! is spent on them.
//!
//! Per batch, each request resolves its model through the lock-free
//! [`ModelRegistry`], features come from the fingerprint-keyed
//! [`FeatureCache`] (misses featurized through the same
//! [`featurize_trees_sharded`] path training uses), and one block-diagonal
//! forward serves the whole adapter group.
//!
//! **Failure model.** Workers are supervised (see [`crate::supervisor`]): a
//! panic anywhere in the drain/forward path kills only that worker, which
//! the supervisor respawns; a panic inside one group's forward is caught
//! *in place* and — when the server was built
//! [`DaceServer::with_fallback`] — the group is answered from the
//! [`FallbackEstimator`] with `degraded: true` instead of failing. A
//! [`CircuitBreaker`] watches model-path outcomes (errors and deadline
//! misses) and, once tripped, routes whole groups straight to the fallback
//! until half-open probes prove the model healthy again. Faults themselves
//! can be injected deterministically via [`ServeConfig::faults`] for chaos
//! tests and `serve_bench --chaos`.
//!
//! [`PackedBatch`]: dace_core::PackedBatch

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use dace_core::{featurize_trees_sharded, DaceEstimator, PlanFeatures, Workspace};
use dace_obs::{mark, next_trace_id, span, trace_scope, LifecycleEvent, MetricsRegistry};
use dace_plan::{validate_plan, PlanTree, PlanValidationError, DEFAULT_MAX_PLAN_DEPTH};

use crate::cache::FeatureCache;
use crate::fallback::{
    BreakerConfig, BreakerEvent, BreakerGate, BreakerState, CircuitBreaker, FallbackEstimator,
};
use crate::fault::{FaultConfig, FaultInjector, INJECTED_PANIC};
use crate::health::{HealthConfig, HealthPlane};
use crate::introspect::IntrospectServer;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::{ModelRegistry, ModelVersion};
use crate::supervisor::{lock_recover, WorkerPool};

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest batch a worker drains before forwarding. `1` disables
    /// micro-batching (the baseline `serve_bench` compares against).
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for more requests.
    /// Only ever paid on an idle system; a backlog fills batches instantly.
    pub max_wait: Duration,
    /// Dispatch immediately once a drain holds this many requests instead
    /// of waiting out the rest of the window. Without this, closed-loop
    /// traffic collapses: every client is blocked on a response, so the
    /// window is pure idle time (and it is spent holding the queue lock).
    /// Lower toward 1 to always dispatch what is instantaneously queued;
    /// raise toward `max_batch` for maximum forward efficiency under
    /// open-loop load.
    pub min_fill: usize,
    /// Bounded queue depth; submissions beyond it are shed with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Worker threads draining the queue. `0` is accepted for tests that
    /// exercise admission control without any draining.
    pub workers: usize,
    /// Deadline applied to requests that do not carry their own; `None`
    /// means queued requests never expire.
    pub default_deadline: Option<Duration>,
    /// Featurization-cache capacity in entries (`0` disables the cache).
    pub cache_capacity: usize,
    /// Threads for cache-miss featurization within a batch (`0` = auto).
    /// Batches under 64 misses featurize serially either way, so the
    /// default never pays thread-spawn latency on the serve path.
    pub featurize_threads: usize,
    /// Record the per-stage breakdown (cache lookup, attention/MLP split)
    /// into the metrics registry and stamp each [`Prediction`] with its
    /// [`StageBreakdown`]. Costs a handful of clock reads per *batch*, so
    /// it defaults on; turn off to shave the last fraction of a percent in
    /// throughput benchmarks.
    pub stage_timing: bool,
    /// Depth limit enforced by admission-time plan validation (`0`
    /// disables the depth check; structural and numeric validation always
    /// run). Defaults to [`DEFAULT_MAX_PLAN_DEPTH`].
    pub max_plan_depth: usize,
    /// Circuit-breaker tuning; only consulted when the server was built
    /// with a fallback estimator.
    pub breaker: BreakerConfig,
    /// Deterministic fault-injection plan; [`FaultConfig::disabled`] (the
    /// default) compiles to one relaxed atomic load per site.
    pub faults: FaultConfig,
    /// Bind address for the introspection endpoint (`/health`, `/metrics`,
    /// `/events`, `/trace`, `/version`). `None` (the default) disables it;
    /// port 0 binds a free port, readable via
    /// [`DaceServer::introspect_addr`].
    pub introspect_addr: Option<SocketAddr>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            min_fill: 8,
            queue_depth: 1024,
            workers: 2,
            default_deadline: None,
            cache_capacity: 4096,
            featurize_threads: 1,
            stage_timing: true,
            max_plan_depth: DEFAULT_MAX_PLAN_DEPTH,
            breaker: BreakerConfig::default(),
            faults: FaultConfig::disabled(),
            introspect_addr: None,
        }
    }
}

/// Why the serve layer refused or failed a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full at admission — load shed; retry later or
    /// elsewhere.
    Overloaded,
    /// The request's deadline passed before a worker drained it.
    DeadlineExceeded,
    /// The request named an adapter the registry does not hold.
    UnknownAdapter(String),
    /// The plan failed admission-time validation (malformed tree, NaN/Inf
    /// estimates, or deeper than [`ServeConfig::max_plan_depth`]).
    InvalidPlan(PlanValidationError),
    /// The model path panicked on this request's group and no fallback
    /// estimator was configured to absorb it.
    Internal,
    /// The server is shutting down (or already shut down).
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "queue full: request shed"),
            ServeError::DeadlineExceeded => write!(f, "deadline passed in queue"),
            ServeError::UnknownAdapter(n) => write!(f, "unknown adapter {n:?}"),
            ServeError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
            ServeError::Internal => write!(f, "model path failed and no fallback is configured"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Version sentinel stamped on fallback-path answers: a degraded
/// [`Prediction`] did **not** come from any registry snapshot, so it must
/// not carry a real version id. Consumers that aggregate per-model accuracy
/// — the adaptive drift window and shadow evaluation above all — key off
/// this (and the `degraded` flag) to keep heuristic answers out of model
/// observations. `u64::MAX` can never collide with a registry id: versions
/// are a counter starting at 0.
pub const FALLBACK_VERSION: u64 = u64::MAX;

/// A served prediction, stamped with exactly which model answered it.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted latency in milliseconds.
    pub ms: f64,
    /// Adapter that served the request (`None` = base model).
    pub adapter: Option<String>,
    /// Registry version id of the snapshot that served it — the hot-swap
    /// audit trail. Degraded answers carry [`FALLBACK_VERSION`] instead of
    /// the version the request *would have* resolved to, so accuracy
    /// tracking can never attribute a heuristic answer to a model.
    pub version: u64,
    /// Size of the forward batch this request rode in.
    pub batch_size: usize,
    /// Whether featurization came from the cache.
    pub cache_hit: bool,
    /// True when this answer came from the fallback estimator (circuit
    /// breaker open, or the model path panicked on this group) rather than
    /// the model named by `version`. Degraded answers are counted in
    /// `serve_degraded_total`.
    pub degraded: bool,
    /// Per-stage wall-time attribution for this request's batch; `None`
    /// when [`ServeConfig::stage_timing`] is off (and on degraded answers,
    /// which skip the staged path).
    pub stages: Option<StageBreakdown>,
    /// Causal trace id minted at admission and carried through the queue,
    /// batch, worker, and (via [`crate::AdaptiveController::observe`]) any
    /// drift→retrain→swap lineage this request triggers. Nonzero on every
    /// served answer; joins against flight-recorder events, journal
    /// records, and retrain `EpochRecord`s.
    pub trace: u64,
}

/// Where a served request's time went, stage by stage (all µs). Queue wait
/// is per-request; the remaining stages are per forward group (every
/// request in the same adapter group shares them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Time queued before a worker drained this request.
    pub queue_wait_us: u64,
    /// Fingerprinting plus featurization-cache probes for the group.
    pub cache_lookup_us: u64,
    /// Featurization of the group's cache misses (0 on a full hit).
    pub featurize_us: u64,
    /// Attention share of the group's packed forward pass.
    pub attention_us: u64,
    /// MLP share of the group's packed forward pass.
    pub mlp_us: u64,
}

pub(crate) struct Job {
    tree: PlanTree,
    adapter: Option<String>,
    enqueued: Instant,
    deadline: Option<Instant>,
    trace: u64,
    resp: SyncSender<Result<Prediction, ServeError>>,
}

/// In-flight request handle; [`PredictionHandle::wait`] blocks for the
/// response.
#[derive(Debug)]
pub struct PredictionHandle {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PredictionHandle {
    /// Block until the scheduler answers. If the server is torn down with
    /// the request still queued, this resolves to
    /// [`ServeError::ShuttingDown`] rather than hanging.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// Graceful-degradation state: the fallback estimator and the circuit
/// breaker that decides when to use it. Present iff the server was built
/// with [`DaceServer::with_fallback`].
pub(crate) struct DegradeState {
    pub fallback: Box<dyn FallbackEstimator>,
    pub breaker: CircuitBreaker,
}

/// Everything a worker thread needs, bundled so the supervisor can respawn
/// workers from one `Arc` — and so the receiver stays alive with
/// `workers = 0` (admission-control tests).
pub(crate) struct WorkerCtx {
    pub rx: Mutex<Receiver<Job>>,
    pub registry: Arc<ModelRegistry>,
    pub metrics: Arc<ServeMetrics>,
    pub cache: Arc<FeatureCache>,
    pub config: ServeConfig,
    pub degrade: Option<DegradeState>,
    pub injector: FaultInjector,
    /// The health plane every lifecycle event and SLO observation reports
    /// through. Always present (defaults to in-memory journaling).
    pub health: Arc<HealthPlane>,
    /// Raised before teardown so worker deaths during shutdown are not
    /// respawned (or miscounted as service-affecting).
    pub shutdown: AtomicBool,
}

/// The online estimator service: micro-batching scheduler over a
/// [`ModelRegistry`], with featurization cache, metrics, supervised
/// workers, and (optionally) a circuit-broken fallback estimator.
///
/// Shared state is behind `Arc`s, so `&DaceServer` can be used from any
/// number of client threads; dropping the server joins its workers after
/// they drain the queue.
pub struct DaceServer {
    registry: Arc<ModelRegistry>,
    metrics_registry: Arc<MetricsRegistry>,
    metrics: Arc<ServeMetrics>,
    cache: Arc<FeatureCache>,
    config: ServeConfig,
    sender: Option<SyncSender<Job>>,
    ctx: Arc<WorkerCtx>,
    pool: Option<WorkerPool>,
    introspect: Option<IntrospectServer>,
}

impl DaceServer {
    /// Start a server over `registry` with `config`, spawning the worker
    /// threads immediately. Without a fallback estimator, model-path
    /// panics are still caught and isolated, but the affected requests
    /// fail with [`ServeError::Internal`] instead of degrading.
    pub fn new(registry: Arc<ModelRegistry>, config: ServeConfig) -> DaceServer {
        DaceServer::build(registry, config, None)
    }

    /// Start a server that degrades to `fallback` (flagged and counted)
    /// whenever the circuit breaker distrusts the model path, instead of
    /// failing requests.
    pub fn with_fallback(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Box<dyn FallbackEstimator>,
    ) -> DaceServer {
        DaceServer::build(registry, config, Some(fallback))
    }

    /// Start a server with an explicit [`HealthConfig`] — a persistent
    /// lifecycle journal, a diagnostic-bundle directory, and/or tuned SLO
    /// windows. `fallback` is optional, as in
    /// [`new`](DaceServer::new)/[`with_fallback`](DaceServer::with_fallback).
    pub fn with_health(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Option<Box<dyn FallbackEstimator>>,
        health: HealthConfig,
    ) -> DaceServer {
        DaceServer::build_with_health(registry, config, fallback, health)
    }

    fn build(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Option<Box<dyn FallbackEstimator>>,
    ) -> DaceServer {
        DaceServer::build_with_health(registry, config, fallback, HealthConfig::default())
    }

    fn build_with_health(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Option<Box<dyn FallbackEstimator>>,
        health_cfg: HealthConfig,
    ) -> DaceServer {
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        // Per-server registry (not the process-global one) so two servers —
        // or two sequential bench phases — never blend their counts.
        let metrics_registry = Arc::new(MetricsRegistry::new());
        let metrics = Arc::new(ServeMetrics::register(&metrics_registry));
        let cache = Arc::new(FeatureCache::with_counters(
            config.cache_capacity,
            Arc::clone(&metrics.cache_hits),
            Arc::clone(&metrics.cache_misses),
        ));
        let degrade = fallback.map(|fallback| DegradeState {
            fallback,
            breaker: CircuitBreaker::new(config.breaker),
        });
        let health = HealthPlane::new(health_cfg);
        // Flight-recorder drops are owned by the lock-free ring; export
        // them as a gauge sampled at scrape time.
        health.register_drop_gauge(
            &metrics_registry,
            "obs_recorder_dropped",
            "Flight-recorder events dropped because the ring was full.",
            || dace_obs::FlightRecorder::global().dropped(),
        );
        let ctx = Arc::new(WorkerCtx {
            rx: Mutex::new(rx),
            registry: Arc::clone(&registry),
            metrics: Arc::clone(&metrics),
            cache: Arc::clone(&cache),
            config,
            degrade,
            injector: FaultInjector::new(config.faults),
            health: Arc::clone(&health),
            shutdown: AtomicBool::new(false),
        });
        let pool = WorkerPool::start(Arc::clone(&ctx), config.workers);
        health.emit(
            0,
            LifecycleEvent::ServerStarted {
                workers: config.workers as u64,
                version: registry.base().version,
            },
        );
        let introspect = config.introspect_addr.and_then(|addr| {
            IntrospectServer::start(
                addr,
                Arc::clone(&health),
                Arc::clone(&metrics_registry),
                Arc::clone(&registry),
                Arc::clone(&ctx),
            )
            .map_err(|e| eprintln!("introspect: bind {addr} failed: {e}"))
            .ok()
        });
        DaceServer {
            registry,
            metrics_registry,
            metrics,
            cache,
            config,
            sender: Some(tx),
            ctx,
            pool: Some(pool),
            introspect,
        }
    }

    /// The registry this server resolves models through (swap adapters
    /// here; traffic picks them up immediately).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The server's fault injector — chaos tests use this to toggle fault
    /// load mid-run ([`FaultInjector::set_enabled`]) and to read roll/fire
    /// counts.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.ctx.injector
    }

    /// Circuit-breaker state, when a fallback is configured.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.ctx.degrade.as_ref().map(|d| d.breaker.state())
    }

    /// The health plane: lifecycle journal, accuracy ledger, SLO tracker.
    pub fn health(&self) -> &Arc<HealthPlane> {
        &self.ctx.health
    }

    /// The bound introspection address, when
    /// [`ServeConfig::introspect_addr`] was set and the bind succeeded.
    /// With port 0 this is the resolved port.
    pub fn introspect_addr(&self) -> Option<SocketAddr> {
        self.introspect.as_ref().map(IntrospectServer::addr)
    }

    /// Submit a request without blocking for its response. Admission
    /// control happens *here*: plan validation rejects hostile input with
    /// [`ServeError::InvalidPlan`], and a full queue returns
    /// [`ServeError::Overloaded`] immediately.
    pub fn submit(
        &self,
        tree: &PlanTree,
        adapter: Option<&str>,
        deadline: Option<Duration>,
    ) -> Result<PredictionHandle, ServeError> {
        let sender = self.sender.as_ref().ok_or(ServeError::ShuttingDown)?;
        if let Err(e) = validate_plan(tree, self.config.max_plan_depth) {
            self.metrics.invalid_plan.inc();
            return Err(ServeError::InvalidPlan(e));
        }
        let now = Instant::now();
        let (tx, rx) = mpsc::sync_channel(1);
        // Mint the causal trace id here, at admission: everything this
        // request touches downstream (spans, journal records, retrain
        // epochs) carries it.
        let trace = next_trace_id();
        mark!("serve_admit", trace);
        let job = Job {
            tree: tree.clone(),
            adapter: adapter.map(str::to_string),
            enqueued: now,
            deadline: deadline.or(self.config.default_deadline).map(|d| now + d),
            trace,
            resp: tx,
        };
        match sender.try_send(job) {
            Ok(()) => {
                self.metrics.submitted.inc();
                Ok(PredictionHandle { rx })
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.shed.inc();
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Blocking predict against the base model.
    pub fn predict(&self, tree: &PlanTree) -> Result<Prediction, ServeError> {
        self.predict_with(tree, None, None)
    }

    /// Blocking predict with an explicit adapter and/or deadline.
    pub fn predict_with(
        &self,
        tree: &PlanTree,
        adapter: Option<&str>,
        deadline: Option<Duration>,
    ) -> Result<Prediction, ServeError> {
        self.submit(tree, adapter, deadline)?.wait()
    }

    /// Snapshot all serve metrics, cache counters included (the cache
    /// records through the same registry-backed counters).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Entries currently held by the featurization cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The metrics registry every serve counter and histogram lives in —
    /// export it with [`MetricsRegistry::prometheus_text`] or
    /// [`MetricsRegistry::json`].
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics_registry
    }

    /// Stop accepting requests, drain the queue, and join the workers.
    /// Equivalent to dropping the server, but explicit at call sites.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Flag first (stops supervision), then disconnect the channel by
        // dropping the only sender; workers finish the backlog and exit.
        self.ctx
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        self.sender.take();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        if let Some(mut introspect) = self.introspect.take() {
            introspect.stop();
        }
    }
}

impl Drop for DaceServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Drain one batch from the shared receiver. Holding the lock across the
/// wait window is deliberate: only one worker collects at a time (the
/// others are either forwarding a previous batch or parked on the mutex,
/// which is exactly the recv they would otherwise be parked on), and under
/// load `recv_timeout` returns instantly so the lock hold is one splice.
///
/// Fault sites: a worker kill fires *after* taking the queue lock but
/// *before* receiving any job — the dying worker holds no request (nothing
/// is lost) but does poison the mutex, exercising both poison recovery in
/// its peers and the supervisor respawn. A queue stall sleeps while
/// holding the lock, stalling every worker behind it.
fn drain_batch(ctx: &WorkerCtx) -> Option<Vec<Job>> {
    let rx = lock_recover(&ctx.rx);
    if ctx
        .injector
        .should_fire(crate::fault::FaultSite::WorkerKill)
    {
        panic!("{INJECTED_PANIC}: worker kill");
    }
    if let Some(stall) = ctx.injector.queue_stall() {
        std::thread::sleep(stall);
    }
    let first = rx.recv().ok()?;
    // The span opens after the blocking recv: it measures batch collection,
    // not idle time waiting for the first request.
    let _span = span!("serve_drain");
    let collect_started = Instant::now();
    let config = ctx.config;
    let max_batch = config.max_batch.max(1);
    let min_fill = config.min_fill.clamp(1, max_batch);
    let mut batch = Vec::with_capacity(max_batch);
    batch.push(first);
    let window_closes = Instant::now() + config.max_wait;
    while batch.len() < max_batch {
        // Splice in everything already queued — free batching.
        if let Ok(job) = rx.try_recv() {
            batch.push(job);
            continue;
        }
        // Queue empty: dispatch a full-enough batch immediately; wait out
        // the window only while the batch is genuinely small.
        if batch.len() >= min_fill {
            break;
        }
        if Instant::now() >= window_closes {
            break;
        }
        // Yield before parking: on a loaded (or single-core) machine the
        // producers are runnable right now, and letting them run fills the
        // queue in one scheduler pass instead of one futex wake per job.
        std::thread::yield_now();
        if let Ok(job) = rx.try_recv() {
            batch.push(job);
            continue;
        }
        // Nothing arrived even after yielding — no producer is ready, so
        // park until one submits or the window closes.
        let now = Instant::now();
        if now >= window_closes {
            break;
        }
        match rx.recv_timeout(window_closes - now) {
            Ok(job) => batch.push(job),
            Err(RecvTimeoutError::Timeout) => break,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    ctx.metrics
        .drain_us
        .record(collect_started.elapsed().as_micros() as u64);
    Some(batch)
}

/// Per-worker reusable inference scratch: the model workspace plus the
/// prediction staging vectors. Buffers grow to the high-water batch size and
/// then the drain loop's forward path stops allocating entirely.
#[derive(Default)]
struct WorkerScratch {
    ws: Workspace,
    roots: Vec<f32>,
    ms: Vec<f64>,
}

pub(crate) fn worker_loop(ctx: &WorkerCtx) {
    let mut scratch = WorkerScratch::default();
    while let Some(batch) = drain_batch(ctx) {
        process_batch(ctx, batch, &mut scratch);
    }
}

/// Count a breaker transition and journal it through the health plane,
/// stamped with the trace of the request that witnessed it. `BreakerOpened`
/// additionally triggers a diagnostic bundle dump (see
/// [`HealthPlane::emit`]).
fn count_breaker_event(ctx: &WorkerCtx, ev: Option<BreakerEvent>, trace: u64) {
    match ev {
        Some(BreakerEvent::Opened) => {
            ctx.metrics.breaker_opened.inc();
            ctx.health.emit(
                trace,
                LifecycleEvent::BreakerOpened {
                    error_percent: ctx.config.breaker.error_percent as f64,
                },
            );
        }
        Some(BreakerEvent::Closed) => {
            ctx.metrics.breaker_closed.inc();
            ctx.health.emit(trace, LifecycleEvent::BreakerClosed);
        }
        None => {}
    }
}

fn process_batch(ctx: &WorkerCtx, batch: Vec<Job>, scratch: &mut WorkerScratch) {
    let _span = span!("serve_process_batch");
    let metrics = &ctx.metrics;
    let drained_at = Instant::now();
    metrics.batches.inc();
    metrics.batch_size.record(batch.len() as u64);

    // Admission-side triage, then group survivors by adapter so each group
    // runs one packed forward on one resolved snapshot.
    let mut groups: HashMap<Option<String>, Vec<Job>> = HashMap::new();
    let (mut missed, mut met) = (0u64, 0u64);
    let mut missed_trace = 0u64;
    for job in batch {
        metrics
            .queue_wait_us
            .record(drained_at.duration_since(job.enqueued).as_micros() as u64);
        if job.deadline.is_some_and(|d| drained_at >= d) {
            metrics.expired.inc();
            missed += 1;
            if missed_trace == 0 {
                missed_trace = job.trace;
            }
            // A deadline miss is model-path evidence too: enough of them
            // should trip the breaker into serving (fast) degraded answers
            // rather than missing more deadlines.
            if let Some(d) = &ctx.degrade {
                count_breaker_event(ctx, d.breaker.on_result(false, false), job.trace);
            }
            let _ = job.resp.send(Err(ServeError::DeadlineExceeded));
            continue;
        }
        met += 1;
        groups.entry(job.adapter.clone()).or_default().push(job);
    }
    // Feed the deadline SLO at batch granularity; the alert (if any) is
    // stamped with the first expired request's trace.
    ctx.health.record_deadlines(missed, met, missed_trace);

    for (adapter, jobs) in groups {
        let version = match ctx.registry.resolve(adapter.as_deref()) {
            Ok(v) => v,
            Err(_) => {
                let name = adapter.unwrap_or_default();
                for job in jobs {
                    metrics.unknown_adapter.inc();
                    let _ = job.resp.send(Err(ServeError::UnknownAdapter(name.clone())));
                }
                continue;
            }
        };

        // The group's spans carry the first member's trace — a whole-group
        // forward has no single owner, so the representative makes the
        // batch's flight-recorder lane joinable with at least one journal
        // chain.
        let group_trace = jobs.first().map_or(0, |j| j.trace);

        // Route the group: model, breaker probe, or straight to fallback.
        let (use_model, probe) = match &ctx.degrade {
            Some(d) => match d.breaker.gate() {
                BreakerGate::Model => (true, false),
                BreakerGate::Probe => {
                    // `gate()` flips Open→HalfOpen internally without an
                    // event; the probe grant is the observation point.
                    ctx.health
                        .emit(group_trace, LifecycleEvent::BreakerHalfOpen);
                    (true, true)
                }
                BreakerGate::Fallback => (false, false),
            },
            None => (true, false),
        };
        if !use_model {
            respond_degraded(ctx, &version, jobs);
            continue;
        }

        // The whole model path runs under `catch_unwind`, borrowing the
        // jobs: a panic (injected or real) leaves them intact, so the
        // group degrades to the fallback — or fails typed — instead of
        // killing the worker and poisoning the queue.
        let outcome = {
            let _trace = trace_scope(group_trace);
            catch_unwind(AssertUnwindSafe(|| {
                forward_group(ctx, &version.estimator, &jobs, scratch)
            }))
        };
        match outcome {
            Ok(group) => {
                if let Some(d) = &ctx.degrade {
                    count_breaker_event(ctx, d.breaker.on_result(true, probe), group_trace);
                }
                respond_predictions(ctx, &version, jobs, group, &scratch.ms, drained_at);
            }
            Err(_) => {
                metrics.batch_panics.inc();
                match &ctx.degrade {
                    Some(d) => {
                        count_breaker_event(ctx, d.breaker.on_result(false, probe), group_trace);
                        respond_degraded(ctx, &version, jobs);
                    }
                    None => {
                        for job in jobs {
                            let _ = job.resp.send(Err(ServeError::Internal));
                        }
                    }
                }
            }
        }
    }
}

/// What the model path produced for a group (predictions land in
/// `scratch.ms`, aligned with the group's jobs).
struct GroupOutput {
    hit_mask: Vec<bool>,
    stages: Option<StageBreakdown>,
}

/// The model path for one adapter group: featurize through the cache, one
/// packed block-diagonal forward. May panic (that is the point — the
/// caller catches it); must not consume the jobs.
fn forward_group(
    ctx: &WorkerCtx,
    est: &DaceEstimator,
    jobs: &[Job],
    scratch: &mut WorkerScratch,
) -> GroupOutput {
    let metrics = &ctx.metrics;
    let config = ctx.config;
    if let Some(delay) = ctx.injector.stage_delay() {
        std::thread::sleep(delay);
    }

    // Featurize through the cache; misses go through the same sharded
    // path training uses (serial below 64 trees). `featurize_us` keeps
    // its historical meaning (probe + miss featurization); stage timing
    // additionally splits out the probe cost.
    let t_feat = Instant::now();
    let fingerprints: Vec<u64> = jobs
        .iter()
        .map(|j| est.featurizer.fingerprint(&j.tree))
        .collect();
    let mut feats: Vec<Option<Arc<PlanFeatures>>> =
        fingerprints.iter().map(|&fp| ctx.cache.get(fp)).collect();
    let cache_lookup_us = t_feat.elapsed().as_micros() as u64;
    let hit_mask: Vec<bool> = feats.iter().map(Option::is_some).collect();
    let miss_idx: Vec<usize> = (0..jobs.len()).filter(|&i| feats[i].is_none()).collect();
    if !miss_idx.is_empty() {
        let _span = span!("serve_featurize");
        let miss_trees: Vec<&PlanTree> = miss_idx.iter().map(|&i| &jobs[i].tree).collect();
        let fresh = featurize_trees_sharded(&est.featurizer, &miss_trees, config.featurize_threads);
        for (&i, f) in miss_idx.iter().zip(fresh) {
            let f = Arc::new(f);
            ctx.cache.insert(fingerprints[i], Arc::clone(&f));
            feats[i] = Some(f);
        }
    }
    let feats: Vec<Arc<PlanFeatures>> = feats.into_iter().map(Option::unwrap).collect();
    let featurize_us = t_feat.elapsed().as_micros() as u64;
    metrics.featurize_us.record(featurize_us);

    if ctx
        .injector
        .should_fire(crate::fault::FaultSite::BatchPanic)
    {
        panic!("{INJECTED_PANIC}: batch forward panic");
    }

    // One packed block-diagonal forward for the whole group.
    let t_fwd = Instant::now();
    let refs: Vec<&PlanFeatures> = feats.iter().map(Arc::as_ref).collect();
    let stages = {
        let _span = span!("serve_forward");
        // Predictions land in the worker's reusable scratch
        // (`scratch.ms`, aligned with `jobs`): the steady-state forward
        // path allocates nothing.
        let timings = est.predict_features_batch_ms_timed_ws(
            &refs,
            &mut scratch.ws,
            &mut scratch.roots,
            &mut scratch.ms,
        );
        if config.stage_timing {
            metrics.cache_lookup_us.record(cache_lookup_us);
            metrics.attention_us.record(timings.attention_us);
            metrics.mlp_us.record(timings.mlp_us);
            Some(StageBreakdown {
                queue_wait_us: 0, // stamped per request below
                cache_lookup_us,
                featurize_us: featurize_us - cache_lookup_us,
                attention_us: timings.attention_us,
                mlp_us: timings.mlp_us,
            })
        } else {
            None
        }
    };
    metrics
        .forward_us
        .record(t_fwd.elapsed().as_micros() as u64);
    GroupOutput { hit_mask, stages }
}

/// Deliver a group's model predictions (`ms` is the scratch-backed slice
/// `forward_group` filled, aligned with `jobs`).
fn respond_predictions(
    ctx: &WorkerCtx,
    version: &Arc<ModelVersion>,
    jobs: Vec<Job>,
    group: GroupOutput,
    ms: &[f64],
    drained_at: Instant,
) {
    let metrics = &ctx.metrics;
    let group_size = jobs.len();
    let t_resp = Instant::now();
    let _span = span!("serve_respond");
    for ((job, &ms), hit) in jobs.into_iter().zip(ms).zip(group.hit_mask) {
        metrics.completed.inc();
        metrics
            .e2e_us
            .record(job.enqueued.elapsed().as_micros() as u64);
        let stages = group.stages.map(|s| StageBreakdown {
            queue_wait_us: drained_at.duration_since(job.enqueued).as_micros() as u64,
            ..s
        });
        mark!("serve_reply", job.trace);
        let _ = job.resp.send(Ok(Prediction {
            ms,
            adapter: version.adapter.clone(),
            version: version.version,
            batch_size: group_size,
            cache_hit: hit,
            degraded: false,
            stages,
            trace: job.trace,
        }));
    }
    metrics
        .respond_us
        .record(t_resp.elapsed().as_micros() as u64);
}

/// Answer a whole group from the fallback estimator, flagged `degraded`.
/// Used both when the breaker gates the group away from the model and when
/// the model path panicked on it. Only callable with a fallback configured.
///
/// The answer is stamped [`FALLBACK_VERSION`], not the version the group
/// resolved: these numbers did not come from that snapshot, and a drift
/// detector ingesting them as model observations would trip on fallback
/// noise (or worse, mask real model drift).
fn respond_degraded(ctx: &WorkerCtx, version: &Arc<ModelVersion>, jobs: Vec<Job>) {
    let metrics = &ctx.metrics;
    let degrade = ctx
        .degrade
        .as_ref()
        .expect("respond_degraded requires a fallback");
    let group_size = jobs.len();
    let _span = span!("serve_respond");
    for job in jobs {
        let ms = degrade.fallback.predict_ms(&job.tree);
        metrics.degraded.inc();
        metrics.completed.inc();
        metrics
            .e2e_us
            .record(job.enqueued.elapsed().as_micros() as u64);
        mark!("serve_reply", job.trace);
        let _ = job.resp.send(Ok(Prediction {
            ms,
            adapter: version.adapter.clone(),
            version: FALLBACK_VERSION,
            batch_size: group_size,
            cache_hit: false,
            degraded: true,
            stages: None,
            trace: job.trace,
        }));
    }
}
