//! The sharded micro-batching scheduler and the [`DaceServer`] facade.
//!
//! The server runs `ServeConfig::shards` **core-affine worker shards**.
//! Each shard owns a bounded multi-lane queue
//! ([`ShardQueue`](crate::tenant)) with one lane per tenant drained by
//! deficit-round-robin weighted-fair queueing, a private featurization
//! cache, and at least one dedicated worker; requests are routed to a
//! shard at admission by a structural FNV-1a fingerprint of the plan
//! ([`route_shard`]), salted per tenant, so repeated plans always land
//! where their features are already cached and shards share no lock or
//! cache-line traffic on the hot path. An idle shard **steals bounded
//! batches** from the deepest backlogged peer (`steal_threshold` /
//! `steal_max`), so affinity skew cannot strand throughput; stolen jobs
//! migrate whole — trace ids, deadlines, tiers, tenants and response
//! channels intact.
//!
//! **Tenancy.** Requests may carry a tenant id
//! ([`DaceServer::submit_for`]): admission validates the id
//! ([`ServeError::InvalidTenant`]), charges the tenant's token-bucket
//! quota and in-flight cap ([`ServeError::QuotaExceeded`]), and enqueues
//! into the tenant's own lane — a flooding tenant fills and sheds only its
//! own lane while the fair drain keeps serving everyone else. Each tenant
//! has its own [`CircuitBreaker`], so one tenant's panics and deadline
//! misses degrade only that tenant to the fallback, never the global
//! breaker; and with an [`AdapterPager`](crate::AdapterPager) configured
//! ([`DaceServer::with_tenancy`]), tenants whose adapter is not resident
//! are answered zero-shot by the base model (`degraded: true`) while the
//! pager loads their checkpoint in the background — never blocked, never
//! shed.
//!
//! Within a shard, workers drain the queue into [`PackedBatch`]es under a
//! `max_batch` / `max_wait` / `min_fill` policy: a worker blocks for the
//! first request, splices in everything already queued, and dispatches as
//! soon as the batch is full, full *enough* (`min_fill`), or the wait
//! window closes. The window is clamped by every held request's deadline,
//! so batch-wait can never expire a request that arrived alive. Under load
//! the window never opens because the backlog fills the batch instantly,
//! so batching adds latency only when the system is idle enough not to
//! care — and `min_fill` keeps closed-loop clients (all blocked on
//! responses, so no arrivals are even possible) from paying the window at
//! all. Admission control keeps tail latency degrading gracefully
//! instead of collapsing: a full shard queue sheds the request immediately
//! with [`ServeError::Overloaded`] (the client can retry against a
//! replica), malformed or hostile plans are rejected up front with
//! [`ServeError::InvalidPlan`], and requests whose deadline passed while
//! queued are dropped with [`ServeError::DeadlineExceeded`] before any work
//! is spent on them.
//!
//! Admission also picks a **precision tier** ([`Tier`]): requests whose
//! deadline budget is at or under `fast_tier_deadline` route to the int8
//! [`QuantizedEstimator`](dace_core::QuantizedEstimator) twin rebuilt at
//! every registry swap; everything else runs full precision. Per batch,
//! each request resolves its model through the lock-free
//! [`ModelRegistry`], features come from the fingerprint-keyed shard-local
//! [`FeatureCache`] (misses featurized through the same
//! [`featurize_trees_sharded`] path training uses), and one block-diagonal
//! forward serves each (adapter, tier) group.
//!
//! **Failure model.** Workers are supervised (see [`crate::supervisor`]): a
//! panic anywhere in the drain/forward path kills only that worker, which
//! the supervisor respawns; a panic inside one group's forward is caught
//! *in place* and — when the server was built
//! [`DaceServer::with_fallback`] — the group is answered from the
//! [`FallbackEstimator`] with `degraded: true` instead of failing. A
//! [`CircuitBreaker`] watches model-path outcomes (errors and deadline
//! misses) and, once tripped, routes whole groups straight to the fallback
//! until half-open probes prove the model healthy again. Faults themselves
//! can be injected deterministically via [`ServeConfig::faults`] for chaos
//! tests and `serve_bench --chaos`.
//!
//! [`PackedBatch`]: dace_core::PackedBatch

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use dace_core::{featurize_trees_sharded, PlanFeatures, QuantWorkspace, Workspace};
use dace_obs::{mark, next_trace_id, span, trace_scope, LifecycleEvent, MetricsRegistry};
use dace_plan::{validate_plan, PlanTree, PlanValidationError, DEFAULT_MAX_PLAN_DEPTH};
use serde::Serialize;

use crate::cache::FeatureCache;
use crate::fallback::{
    BreakerConfig, BreakerEvent, BreakerGate, BreakerState, CircuitBreaker, FallbackEstimator,
};
use crate::fault::{FaultConfig, FaultInjector, INJECTED_PANIC};
use crate::health::{HealthConfig, HealthPlane};
use crate::introspect::IntrospectServer;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::paging::{AdapterPager, PagedResolve, PagerConfig};
use crate::registry::{ModelRegistry, ModelVersion};
use crate::supervisor::{lock_recover, WorkerPool};
use crate::tenant::{
    validate_tenant_id, InFlightGuard, PopError, PushError, ShardQueue, TenantConfig,
    TenantSnapshot, TenantState, TenantTable,
};

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest batch a worker drains before forwarding. `1` disables
    /// micro-batching (the baseline `serve_bench` compares against).
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for more requests.
    /// Only ever paid on an idle system; a backlog fills batches instantly.
    pub max_wait: Duration,
    /// Dispatch immediately once a drain holds this many requests instead
    /// of waiting out the rest of the window. Without this, closed-loop
    /// traffic collapses: every client is blocked on a response, so the
    /// window is pure idle time (and it is spent holding the queue lock).
    /// Lower toward 1 to always dispatch what is instantaneously queued;
    /// raise toward `max_batch` for maximum forward efficiency under
    /// open-loop load.
    pub min_fill: usize,
    /// Bounded queue depth; submissions beyond it are shed with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Worker threads draining the queue. `0` is accepted for tests that
    /// exercise admission control without any draining.
    pub workers: usize,
    /// Deadline applied to requests that do not carry their own; `None`
    /// means queued requests never expire.
    pub default_deadline: Option<Duration>,
    /// Featurization-cache capacity in entries (`0` disables the cache).
    pub cache_capacity: usize,
    /// Threads for cache-miss featurization within a batch (`0` = auto).
    /// Batches under 64 misses featurize serially either way, so the
    /// default never pays thread-spawn latency on the serve path.
    pub featurize_threads: usize,
    /// Record the per-stage breakdown (cache lookup, attention/MLP split)
    /// into the metrics registry and stamp each [`Prediction`] with its
    /// [`StageBreakdown`]. Costs a handful of clock reads per *batch*, so
    /// it defaults on; turn off to shave the last fraction of a percent in
    /// throughput benchmarks.
    pub stage_timing: bool,
    /// Depth limit enforced by admission-time plan validation (`0`
    /// disables the depth check; structural and numeric validation always
    /// run). Defaults to [`DEFAULT_MAX_PLAN_DEPTH`].
    pub max_plan_depth: usize,
    /// Circuit-breaker tuning; only consulted when the server was built
    /// with a fallback estimator.
    pub breaker: BreakerConfig,
    /// Deterministic fault-injection plan; [`FaultConfig::disabled`] (the
    /// default) compiles to one relaxed atomic load per site.
    pub faults: FaultConfig,
    /// Bind address for the introspection endpoint (`/health`, `/metrics`,
    /// `/events`, `/trace`, `/version`). `None` (the default) disables it;
    /// port 0 binds a free port, readable via
    /// [`DaceServer::introspect_addr`].
    pub introspect_addr: Option<SocketAddr>,
    /// Worker shards. Each shard owns a bounded queue (`queue_depth` slots
    /// each), a private featurization cache, and at least one dedicated
    /// worker; requests are routed to shards by structural plan fingerprint
    /// (FNV-1a), so repeated plans land on the shard whose cache is warm.
    /// `1` (the default) reproduces the single-queue scheduler exactly.
    pub shards: usize,
    /// A shard whose queue holds at least this many requests may be stolen
    /// from by an idle shard. Affinity is a cache hint, not a correctness
    /// property — stolen jobs keep their trace, deadline and response
    /// channel, only the cache warmth differs.
    pub steal_threshold: usize,
    /// Most jobs one steal sweep moves (bounds how much affinity a single
    /// imbalance can destroy).
    pub steal_max: usize,
    /// Requests whose effective deadline is at or under this duration are
    /// served by the int8 quantized tier ([`Tier::Quantized`]) instead of
    /// full precision. `None` (the default) disables tier routing: every
    /// request runs full precision.
    pub fast_tier_deadline: Option<Duration>,
    /// Pin each shard's workers to a CPU core (`shard index` modulo the
    /// core count), best effort: pinning failures are silently ignored and
    /// non-Linux hosts never attempt it.
    pub pin_cores: bool,
    /// Tenant-isolation policy: default fair-share weight, DRR quantum,
    /// token-bucket quota, in-flight cap, tenant-table bound, and the
    /// top-K metrics cardinality cut. Only consulted for requests that
    /// carry a tenant id ([`DaceServer::submit_for`]); tenant-less traffic
    /// is untouched.
    pub tenants: TenantConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            min_fill: 8,
            queue_depth: 1024,
            workers: 2,
            default_deadline: None,
            cache_capacity: 4096,
            featurize_threads: 1,
            stage_timing: true,
            max_plan_depth: DEFAULT_MAX_PLAN_DEPTH,
            breaker: BreakerConfig::default(),
            faults: FaultConfig::disabled(),
            introspect_addr: None,
            shards: 1,
            steal_threshold: 4,
            steal_max: 8,
            fast_tier_deadline: None,
            pin_cores: false,
            tenants: TenantConfig::default(),
        }
    }
}

/// Which precision tier served (or will serve) a request. Decided once, at
/// admission, from the request's effective deadline against
/// [`ServeConfig::fast_tier_deadline`]; stolen work keeps its tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Full-precision f32 forward — the accuracy tier (default).
    Full,
    /// Int8 quantized forward — the deadline-tight fast tier.
    Quantized,
}

impl Tier {
    /// Stable label used in metrics (`serve_tier_requests_total{tier=...}`)
    /// and ledgers.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Quantized => "quantized",
        }
    }
}

/// Why the serve layer refused or failed a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full at admission — load shed; retry later or
    /// elsewhere.
    Overloaded,
    /// The request's deadline passed before a worker drained it.
    DeadlineExceeded,
    /// The request named an adapter the registry does not hold.
    UnknownAdapter(String),
    /// The plan failed admission-time validation (malformed tree, NaN/Inf
    /// estimates, or deeper than [`ServeConfig::max_plan_depth`]).
    InvalidPlan(PlanValidationError),
    /// The model path panicked on this request's group and no fallback
    /// estimator was configured to absorb it.
    Internal,
    /// The request's tenant is over its token-bucket rate quota or its
    /// in-flight cap ([`TenantConfig`]). Per-tenant by construction: one
    /// tenant exhausting its quota cannot surface this error to another.
    QuotaExceeded,
    /// The request carried a malformed tenant id (empty, over
    /// [`MAX_TENANT_ID_BYTES`](crate::MAX_TENANT_ID_BYTES) bytes, or
    /// outside the printable-ASCII charset). The payload says which check
    /// failed.
    InvalidTenant(String),
    /// The server is shutting down (or already shut down).
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "queue full: request shed"),
            ServeError::DeadlineExceeded => write!(f, "deadline passed in queue"),
            ServeError::UnknownAdapter(n) => write!(f, "unknown adapter {n:?}"),
            ServeError::InvalidPlan(e) => write!(f, "invalid plan: {e}"),
            ServeError::Internal => write!(f, "model path failed and no fallback is configured"),
            ServeError::QuotaExceeded => write!(f, "tenant over quota: request rejected"),
            ServeError::InvalidTenant(reason) => write!(f, "invalid tenant id: {reason}"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Version sentinel stamped on fallback-path answers: a degraded
/// [`Prediction`] did **not** come from any registry snapshot, so it must
/// not carry a real version id. Consumers that aggregate per-model accuracy
/// — the adaptive drift window and shadow evaluation above all — key off
/// this (and the `degraded` flag) to keep heuristic answers out of model
/// observations. `u64::MAX` can never collide with a registry id: versions
/// are a counter starting at 0.
pub const FALLBACK_VERSION: u64 = u64::MAX;

/// A served prediction, stamped with exactly which model answered it.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted latency in milliseconds.
    pub ms: f64,
    /// Adapter that served the request (`None` = base model).
    pub adapter: Option<String>,
    /// Registry version id of the snapshot that served it — the hot-swap
    /// audit trail. Degraded answers carry [`FALLBACK_VERSION`] instead of
    /// the version the request *would have* resolved to, so accuracy
    /// tracking can never attribute a heuristic answer to a model.
    pub version: u64,
    /// Size of the forward batch this request rode in.
    pub batch_size: usize,
    /// Whether featurization came from the cache.
    pub cache_hit: bool,
    /// True when this answer came from the fallback estimator (circuit
    /// breaker open, or the model path panicked on this group) rather than
    /// the model named by `version`. Degraded answers are counted in
    /// `serve_degraded_total`.
    pub degraded: bool,
    /// Per-stage wall-time attribution for this request's batch; `None`
    /// when [`ServeConfig::stage_timing`] is off (and on degraded answers,
    /// which skip the staged path).
    pub stages: Option<StageBreakdown>,
    /// Causal trace id minted at admission and carried through the queue,
    /// batch, worker, and (via [`crate::AdaptiveController::observe`]) any
    /// drift→retrain→swap lineage this request triggers. Nonzero on every
    /// served answer; joins against flight-recorder events, journal
    /// records, and retrain `EpochRecord`s.
    pub trace: u64,
    /// Which precision tier this request was routed to at admission. A
    /// degraded answer keeps the routed tier (the `degraded` flag already
    /// says the model did not answer), so tier accounting stays consistent
    /// across fallback episodes.
    pub tier: Tier,
}

/// Where a served request's time went, stage by stage (all µs). Queue wait
/// is per-request; the remaining stages are per forward group (every
/// request in the same adapter group shares them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Time queued before a worker drained this request.
    pub queue_wait_us: u64,
    /// Fingerprinting plus featurization-cache probes for the group.
    pub cache_lookup_us: u64,
    /// Featurization of the group's cache misses (0 on a full hit).
    pub featurize_us: u64,
    /// Attention share of the group's packed forward pass.
    pub attention_us: u64,
    /// MLP share of the group's packed forward pass.
    pub mlp_us: u64,
}

pub(crate) struct Job {
    tree: PlanTree,
    adapter: Option<String>,
    /// The tenant this request belongs to (`None` = legacy tenant-less
    /// traffic). Carries the cache salt, the per-tenant breaker and the
    /// counters; stolen jobs keep it.
    tenant: Option<Arc<TenantState>>,
    /// RAII slot against the tenant's in-flight cap — released on *every*
    /// exit path (answered, expired, dropped at shutdown) by Drop.
    _in_flight: Option<InFlightGuard>,
    enqueued: Instant,
    deadline: Option<Instant>,
    trace: u64,
    tier: Tier,
    resp: SyncSender<Result<Prediction, ServeError>>,
}

/// In-flight request handle; [`PredictionHandle::wait`] blocks for the
/// response.
#[derive(Debug)]
pub struct PredictionHandle {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PredictionHandle {
    /// Block until the scheduler answers. If the server is torn down with
    /// the request still queued, this resolves to
    /// [`ServeError::ShuttingDown`] rather than hanging.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// Graceful-degradation state: the fallback estimator and the circuit
/// breaker that decides when to use it. Present iff the server was built
/// with [`DaceServer::with_fallback`].
pub(crate) struct DegradeState {
    pub fallback: Box<dyn FallbackEstimator>,
    pub breaker: CircuitBreaker,
}

/// One worker shard: a bounded queue, a private featurization cache (no
/// cross-shard lock traffic on the hot path), and the shard-local counters
/// the scaling bench and the Prometheus export read.
pub(crate) struct ShardState {
    /// The shard's multi-lane DRR queue: one bounded lane per tenant
    /// (plus the `""` lane for tenant-less traffic), `queue_depth` slots
    /// each. Its internal depth mirror is exported as
    /// `serve_shard_queue_depth{shard}` and consulted by thieves.
    pub queue: ShardQueue<Job>,
    /// Collection mutex: exactly one worker of the shard collects a batch
    /// at a time (the historical receiver-mutex semantics, kept as an
    /// explicit lock now that the queue itself is shared). The WorkerKill
    /// fault site panics while holding it, so peers still exercise poison
    /// recovery.
    pub drain_lock: Mutex<()>,
    /// Shard-private featurization cache. Affinity routing makes repeated
    /// plans land here warm; a stolen job simply featurizes into the
    /// thief's cache instead.
    pub cache: FeatureCache,
    /// Requests answered by workers of this shard (stolen work counts for
    /// the thief — it did the forward pass).
    pub completed: AtomicU64,
    /// `steals_from[v]` = jobs this shard stole from shard `v`. Exported as
    /// `serve_steals_total{from="v",to="this"}`.
    pub steals_from: Box<[AtomicU64]>,
}

/// Point-in-time view of one shard, for the scaling bench and tests.
#[derive(Debug, Clone, Serialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Requests answered by this shard's workers.
    pub completed: u64,
    /// Jobs this shard stole from its peers.
    pub stolen: u64,
    /// Entries in the shard's featurization cache.
    pub cache_len: usize,
}

/// Everything a worker thread needs, bundled so the supervisor can respawn
/// workers from one `Arc` — and so the receivers stay alive with
/// `workers = 0` (admission-control tests).
pub(crate) struct WorkerCtx {
    pub shards: Box<[ShardState]>,
    pub registry: Arc<ModelRegistry>,
    pub metrics: Arc<ServeMetrics>,
    pub config: ServeConfig,
    pub degrade: Option<DegradeState>,
    pub injector: Arc<FaultInjector>,
    /// Live tenants: quotas, weights, breakers, counters. Always present;
    /// empty (and free) when no request ever carried a tenant id.
    pub tenants: TenantTable,
    /// The adapter pager, when built [`DaceServer::with_tenancy`]. `None`
    /// routes tenant requests through the registry like everyone else.
    pub pager: Option<Arc<AdapterPager>>,
    /// The health plane every lifecycle event and SLO observation reports
    /// through. Always present (defaults to in-memory journaling).
    pub health: Arc<HealthPlane>,
    /// Raised before teardown so worker deaths during shutdown are not
    /// respawned (or miscounted as service-affecting).
    pub shutdown: AtomicBool,
}

impl WorkerCtx {
    /// The shard-depth / steal-matrix / per-shard-completed exposition,
    /// appended to `/metrics` through the health plane's text sources.
    /// Label names are quoted per the Prometheus text format; the repo's
    /// round-trip parser keys on the full `name{labels}` string.
    pub(crate) fn shard_prometheus_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("# HELP serve_shard_queue_depth Requests currently queued per shard.\n");
        out.push_str("# TYPE serve_shard_queue_depth gauge\n");
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "serve_shard_queue_depth{{shard=\"{i}\"}} {}",
                s.queue.depth()
            );
        }
        out.push_str("# HELP serve_shard_completed_total Requests answered per shard.\n");
        out.push_str("# TYPE serve_shard_completed_total counter\n");
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "serve_shard_completed_total{{shard=\"{i}\"}} {}",
                s.completed.load(Ordering::Relaxed)
            );
        }
        out.push_str(
            "# HELP serve_steals_total Jobs stolen between shards (from victim, to thief).\n",
        );
        out.push_str("# TYPE serve_steals_total counter\n");
        for (to, s) in self.shards.iter().enumerate() {
            for (from, n) in s.steals_from.iter().enumerate() {
                if from == to {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "serve_steals_total{{from=\"{from}\",to=\"{to}\"}} {}",
                    n.load(Ordering::Relaxed)
                );
            }
        }
        out
    }

    /// The bounded-cardinality per-tenant exposition (top-K exact +
    /// `tenant="_other"`), appended to `/metrics` alongside the shard
    /// series. Empty until a request carries a tenant id.
    pub(crate) fn tenant_prometheus_text(&self) -> String {
        self.tenants
            .prometheus_text(self.config.tenants.top_k_series)
    }
}

/// The online estimator service: micro-batching scheduler over a
/// [`ModelRegistry`], with featurization cache, metrics, supervised
/// workers, and (optionally) a circuit-broken fallback estimator.
///
/// Shared state is behind `Arc`s, so `&DaceServer` can be used from any
/// number of client threads; dropping the server joins its workers after
/// they drain the queue.
pub struct DaceServer {
    registry: Arc<ModelRegistry>,
    metrics_registry: Arc<MetricsRegistry>,
    metrics: Arc<ServeMetrics>,
    config: ServeConfig,
    /// Lane key for tenant-less traffic: the one id
    /// [`validate_tenant_id`] rejects, so it can never collide with a real
    /// tenant's lane.
    anon_lane: Arc<str>,
    ctx: Arc<WorkerCtx>,
    pool: Option<WorkerPool>,
    introspect: Option<IntrospectServer>,
}

impl DaceServer {
    /// Start a server over `registry` with `config`, spawning the worker
    /// threads immediately. Without a fallback estimator, model-path
    /// panics are still caught and isolated, but the affected requests
    /// fail with [`ServeError::Internal`] instead of degrading.
    pub fn new(registry: Arc<ModelRegistry>, config: ServeConfig) -> DaceServer {
        DaceServer::build(registry, config, None)
    }

    /// Start a server that degrades to `fallback` (flagged and counted)
    /// whenever the circuit breaker distrusts the model path, instead of
    /// failing requests.
    pub fn with_fallback(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Box<dyn FallbackEstimator>,
    ) -> DaceServer {
        DaceServer::build(registry, config, Some(fallback))
    }

    /// Start a server with an explicit [`HealthConfig`] — a persistent
    /// lifecycle journal, a diagnostic-bundle directory, and/or tuned SLO
    /// windows. `fallback` is optional, as in
    /// [`new`](DaceServer::new)/[`with_fallback`](DaceServer::with_fallback).
    pub fn with_health(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Option<Box<dyn FallbackEstimator>>,
        health: HealthConfig,
    ) -> DaceServer {
        DaceServer::build_with_health(registry, config, fallback, health, None)
    }

    /// Start a fully tenant-aware server: everything
    /// [`with_health`](DaceServer::with_health) does, plus an
    /// [`AdapterPager`] when `pager` is given — tenant requests resolve
    /// through the bounded resident set, and cold tenants are answered
    /// zero-shot by the base model (`degraded: true`) while their
    /// checkpoint loads in the background.
    pub fn with_tenancy(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Option<Box<dyn FallbackEstimator>>,
        health: HealthConfig,
        pager: Option<PagerConfig>,
    ) -> DaceServer {
        DaceServer::build_with_health(registry, config, fallback, health, pager)
    }

    fn build(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Option<Box<dyn FallbackEstimator>>,
    ) -> DaceServer {
        DaceServer::build_with_health(registry, config, fallback, HealthConfig::default(), None)
    }

    fn build_with_health(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fallback: Option<Box<dyn FallbackEstimator>>,
        health_cfg: HealthConfig,
        pager_cfg: Option<PagerConfig>,
    ) -> DaceServer {
        let shards = config.shards.max(1);
        // Per-server registry (not the process-global one) so two servers —
        // or two sequential bench phases — never blend their counts.
        let metrics_registry = Arc::new(MetricsRegistry::new());
        let metrics = Arc::new(ServeMetrics::register(&metrics_registry));
        let degrade = fallback.map(|fallback| DegradeState {
            fallback,
            breaker: CircuitBreaker::new(config.breaker),
        });
        let health = HealthPlane::new(health_cfg);
        // Flight-recorder drops are owned by the lock-free ring; export
        // them as a gauge sampled at scrape time.
        health.register_drop_gauge(
            &metrics_registry,
            "obs_recorder_dropped",
            "Flight-recorder events dropped because the ring was full.",
            || dace_obs::FlightRecorder::global().dropped(),
        );
        let shard_states: Box<[ShardState]> = (0..shards)
            .map(|_| ShardState {
                // One bounded queue per shard, one lane (of `queue_depth`
                // slots) per tenant inside it: backpressure is per tenant,
                // and a single lane reproduces the old single-FIFO shard
                // exactly.
                queue: ShardQueue::new(config.queue_depth.max(1), config.tenants.quantum),
                drain_lock: Mutex::new(()),
                // Shard caches split the configured capacity so `shards`
                // does not silently multiply the memory budget; hit/miss
                // counters stay shared (the export is per-server).
                cache: FeatureCache::with_counters(
                    config.cache_capacity / shards,
                    Arc::clone(&metrics.cache_hits),
                    Arc::clone(&metrics.cache_misses),
                ),
                completed: AtomicU64::new(0),
                steals_from: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        let injector = Arc::new(FaultInjector::new(config.faults));
        let pager = pager_cfg.map(|cfg| {
            AdapterPager::start(
                cfg,
                Arc::clone(&registry),
                Arc::clone(&injector),
                Arc::clone(&health),
                Arc::clone(&metrics),
            )
        });
        let ctx = Arc::new(WorkerCtx {
            shards: shard_states,
            registry: Arc::clone(&registry),
            metrics: Arc::clone(&metrics),
            config,
            degrade,
            injector,
            tenants: TenantTable::new(config.tenants, config.breaker),
            pager,
            health: Arc::clone(&health),
            shutdown: AtomicBool::new(false),
        });
        // Every shard needs a dedicated drainer or its queue would rely on
        // opportunistic stealing; extra workers round-robin over shards.
        let workers = if config.workers == 0 {
            0
        } else {
            config.workers.max(shards)
        };
        {
            let weak = Arc::downgrade(&ctx);
            health.register_text_source(move || {
                weak.upgrade()
                    .map(|ctx| {
                        let mut text = ctx.shard_prometheus_text();
                        text.push_str(&ctx.tenant_prometheus_text());
                        text
                    })
                    .unwrap_or_default()
            });
        }
        let pool = WorkerPool::start(Arc::clone(&ctx), workers);
        health.emit(
            0,
            LifecycleEvent::ServerStarted {
                workers: workers as u64,
                version: registry.base().version,
            },
        );
        let introspect = config.introspect_addr.and_then(|addr| {
            IntrospectServer::start(
                addr,
                Arc::clone(&health),
                Arc::clone(&metrics_registry),
                Arc::clone(&registry),
                Arc::clone(&ctx),
            )
            .map_err(|e| eprintln!("introspect: bind {addr} failed: {e}"))
            .ok()
        });
        DaceServer {
            registry,
            metrics_registry,
            metrics,
            config,
            anon_lane: Arc::from(""),
            ctx,
            pool: Some(pool),
            introspect,
        }
    }

    /// The registry this server resolves models through (swap adapters
    /// here; traffic picks them up immediately).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The server's fault injector — chaos tests use this to toggle fault
    /// load mid-run ([`FaultInjector::set_enabled`]) and to read roll/fire
    /// counts.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.ctx.injector
    }

    /// Circuit-breaker state, when a fallback is configured.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.ctx.degrade.as_ref().map(|d| d.breaker.state())
    }

    /// The health plane: lifecycle journal, accuracy ledger, SLO tracker.
    pub fn health(&self) -> &Arc<HealthPlane> {
        &self.ctx.health
    }

    /// The bound introspection address, when
    /// [`ServeConfig::introspect_addr`] was set and the bind succeeded.
    /// With port 0 this is the resolved port.
    pub fn introspect_addr(&self) -> Option<SocketAddr> {
        self.introspect.as_ref().map(IntrospectServer::addr)
    }

    /// Submit a request without blocking for its response. Admission
    /// control happens *here*: plan validation rejects hostile input with
    /// [`ServeError::InvalidPlan`], and a full queue returns
    /// [`ServeError::Overloaded`] immediately.
    pub fn submit(
        &self,
        tree: &PlanTree,
        adapter: Option<&str>,
        deadline: Option<Duration>,
    ) -> Result<PredictionHandle, ServeError> {
        self.submit_for(None, tree, adapter, deadline)
    }

    /// Submit a request on behalf of a tenant. On top of everything
    /// [`submit`](DaceServer::submit) enforces, tenant admission validates
    /// the id ([`ServeError::InvalidTenant`]), charges the tenant's
    /// token-bucket quota and in-flight cap
    /// ([`ServeError::QuotaExceeded`]), and enqueues into the tenant's own
    /// weighted-fair lane — so the only traffic a flooding tenant can shed
    /// is its own. The quota token is charged exactly once, here; it is
    /// refunded if the lane sheds the request, and *not* refunded for
    /// answers served degraded (they are answers — the token paid for
    /// one).
    pub fn submit_for(
        &self,
        tenant: Option<&str>,
        tree: &PlanTree,
        adapter: Option<&str>,
        deadline: Option<Duration>,
    ) -> Result<PredictionHandle, ServeError> {
        if self.ctx.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if let Err(e) = validate_plan(tree, self.config.max_plan_depth) {
            self.metrics.invalid_plan.inc();
            return Err(ServeError::InvalidPlan(e));
        }
        let tenant = match tenant {
            None => None,
            Some(name) => {
                if let Err(reason) = validate_tenant_id(name) {
                    self.metrics.invalid_tenant.inc();
                    return Err(ServeError::InvalidTenant(reason));
                }
                match self.ctx.tenants.get_or_create(name) {
                    Some(t) => Some(t),
                    // Tenant table full: the *new* tenant is shed; nobody
                    // already admitted is affected.
                    None => {
                        self.metrics.shed.inc();
                        return Err(ServeError::Overloaded);
                    }
                }
            }
        };
        let mut in_flight = None;
        if let Some(t) = &tenant {
            if !t.charge_token() {
                t.counters.quota_rejected.fetch_add(1, Ordering::Relaxed);
                self.metrics.quota_rejected.inc();
                return Err(ServeError::QuotaExceeded);
            }
            match t.acquire_in_flight() {
                Some(guard) => in_flight = Some(guard),
                None => {
                    // Rejected after charging: give the token back so the
                    // cap cannot silently drain the bucket.
                    t.refund_token();
                    t.counters.quota_rejected.fetch_add(1, Ordering::Relaxed);
                    self.metrics.quota_rejected.inc();
                    return Err(ServeError::QuotaExceeded);
                }
            }
        }
        let now = Instant::now();
        let (tx, rx) = mpsc::sync_channel(1);
        // Mint the causal trace id here, at admission: everything this
        // request touches downstream (spans, journal records, retrain
        // epochs) carries it.
        let trace = next_trace_id();
        mark!("serve_admit", trace);
        // Tier routing happens here, before any queueing: a deadline at or
        // under the fast-tier threshold buys the int8 forward.
        let budget = deadline.or(self.config.default_deadline);
        let tier = match (self.config.fast_tier_deadline, budget) {
            (Some(fast), Some(d)) if d <= fast => Tier::Quantized,
            _ => Tier::Full,
        };
        // Routing is salted per tenant (salt 0 = tenant-less, the legacy
        // route exactly): two tenants submitting the identical plan spread
        // across shards instead of contending for one, and the salt also
        // partitions the featurization cache downstream.
        let salt = tenant.as_ref().map_or(0, |t| t.cache_salt);
        let shard = route_shard(tree, salt, self.ctx.shards.len());
        let (lane, weight) = match &tenant {
            Some(t) => (Arc::clone(&t.name), t.weight()),
            None => (Arc::clone(&self.anon_lane), 1),
        };
        let job = Job {
            tree: tree.clone(),
            adapter: adapter.map(str::to_string),
            tenant: tenant.clone(),
            _in_flight: in_flight,
            enqueued: now,
            deadline: budget.map(|d| now + d),
            trace,
            tier,
            resp: tx,
        };
        match self.ctx.shards[shard].queue.push(&lane, weight, job) {
            Ok(()) => {
                self.metrics.submitted.inc();
                if let Some(t) = &tenant {
                    t.counters.submitted.fetch_add(1, Ordering::Relaxed);
                }
                Ok(PredictionHandle { rx })
            }
            Err((PushError::Full, job)) => {
                // Affinity is strict at admission: a full lane sheds
                // rather than spilling (work-stealing is the pressure
                // valve on the drain side, backpressure is per tenant per
                // shard). Dropping the job releases the in-flight slot;
                // the admission token is refunded — shed requests were
                // never served.
                drop(job);
                if let Some(t) = &tenant {
                    t.refund_token();
                    t.counters.shed.fetch_add(1, Ordering::Relaxed);
                }
                self.metrics.shed.inc();
                Err(ServeError::Overloaded)
            }
            Err((PushError::Closed, job)) => {
                drop(job);
                if let Some(t) = &tenant {
                    t.refund_token();
                }
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Blocking predict against the base model.
    pub fn predict(&self, tree: &PlanTree) -> Result<Prediction, ServeError> {
        self.predict_with(tree, None, None)
    }

    /// Blocking predict with an explicit adapter and/or deadline.
    pub fn predict_with(
        &self,
        tree: &PlanTree,
        adapter: Option<&str>,
        deadline: Option<Duration>,
    ) -> Result<Prediction, ServeError> {
        self.submit(tree, adapter, deadline)?.wait()
    }

    /// Blocking predict on behalf of a tenant (the tenant's paged adapter
    /// when resident, zero-shot base otherwise).
    pub fn predict_for(&self, tenant: &str, tree: &PlanTree) -> Result<Prediction, ServeError> {
        self.submit_for(Some(tenant), tree, None, None)?.wait()
    }

    /// Set a tenant's fair-queueing weight (creating the tenant if it has
    /// not been seen). Takes effect at the lane's next activation.
    pub fn set_tenant_weight(&self, tenant: &str, weight: u32) -> Result<(), ServeError> {
        self.tenant_entry(tenant)?.set_weight(weight);
        Ok(())
    }

    /// Set a tenant's token-bucket quota (`rps` requests/second, `burst`
    /// capacity; `0` rps = unlimited, `0` burst = same as rps), creating
    /// the tenant if needed.
    pub fn set_tenant_quota(&self, tenant: &str, rps: u32, burst: u32) -> Result<(), ServeError> {
        self.tenant_entry(tenant)?.set_quota(rps, burst);
        Ok(())
    }

    /// Set a tenant's in-flight cap (`0` = unlimited), creating the tenant
    /// if needed.
    pub fn set_tenant_max_in_flight(&self, tenant: &str, max: u32) -> Result<(), ServeError> {
        self.tenant_entry(tenant)?.set_max_in_flight(max);
        Ok(())
    }

    fn tenant_entry(&self, tenant: &str) -> Result<Arc<TenantState>, ServeError> {
        validate_tenant_id(tenant).map_err(ServeError::InvalidTenant)?;
        self.ctx
            .tenants
            .get_or_create(tenant)
            .ok_or(ServeError::Overloaded)
    }

    /// Per-tenant counters, weights and breaker states, sorted by traffic
    /// (what `serve_bench --tenants` reports and the isolation tests
    /// assert on).
    pub fn tenant_snapshot(&self) -> Vec<TenantSnapshot> {
        self.ctx.tenants.snapshot()
    }

    /// A tenant's own circuit-breaker state; `None` if the tenant has
    /// never been seen.
    pub fn tenant_breaker_state(&self, tenant: &str) -> Option<BreakerState> {
        self.ctx.tenants.get(tenant).map(|t| t.breaker.state())
    }

    /// The adapter pager, when the server was built
    /// [`with_tenancy`](DaceServer::with_tenancy) with one.
    pub fn pager(&self) -> Option<&Arc<AdapterPager>> {
        self.ctx.pager.as_ref()
    }

    /// Snapshot all serve metrics, cache counters included (the cache
    /// records through the same registry-backed counters).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Entries currently held by the featurization caches (all shards).
    pub fn cache_len(&self) -> usize {
        self.ctx.shards.iter().map(|s| s.cache.len()).sum()
    }

    /// Per-shard queue depth, completion and steal counters — what the
    /// scaling bench turns into the parity and steal assertions.
    pub fn shard_snapshot(&self) -> Vec<ShardSnapshot> {
        self.ctx
            .shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardSnapshot {
                shard,
                queue_depth: s.queue.depth(),
                completed: s.completed.load(Ordering::Relaxed),
                stolen: s
                    .steals_from
                    .iter()
                    .map(|n| n.load(Ordering::Relaxed))
                    .sum(),
                cache_len: s.cache.len(),
            })
            .collect()
    }

    /// The metrics registry every serve counter and histogram lives in —
    /// export it with [`MetricsRegistry::prometheus_text`] or
    /// [`MetricsRegistry::json`].
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics_registry
    }

    /// Stop accepting requests, drain the queue, and join the workers.
    /// Equivalent to dropping the server, but explicit at call sites.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Flag first (stops supervision and new admissions), then close
        // every shard's queue; workers finish the backlog and exit (each
        // shard's dedicated worker drains its own queue, and exiting
        // workers sweep peers for stragglers).
        self.ctx
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        for s in self.ctx.shards.iter() {
            s.queue.close();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        if let Some(pager) = &self.ctx.pager {
            pager.stop();
        }
        if let Some(mut introspect) = self.introspect.take() {
            introspect.stop();
        }
    }
}

impl Drop for DaceServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Structural FNV-1a fingerprint for shard routing: node types, child
/// counts and the raw cost/cardinality estimates, in DFS order. Cheaper
/// than the featurizer's fingerprint (no scaler math) and independent of
/// which model version will serve the request — routing must not resolve
/// the registry. Identical plans always hash identically, so repeats land
/// on the shard whose cache already holds their features. `salt` is the
/// tenant's cache salt (0 = tenant-less, which reproduces the historical
/// route bit-for-bit): two tenants submitting the same plan route
/// independently, matching the tenant-partitioned cache keys downstream.
fn route_shard(tree: &PlanTree, salt: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ salt;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for &id in &tree.dfs() {
        let node = tree.node(id);
        mix(node.node_type.one_hot_index() as u64);
        mix(node.children.len() as u64);
        mix(node.est_cost.to_bits());
        mix(node.est_rows.to_bits());
    }
    (h % shards as u64) as usize
}

/// How long an idle shard waits on its own queue before looking for a
/// backlogged peer to steal from.
const STEAL_POLL: Duration = Duration::from_millis(1);

/// Minimum headroom subtracted from a job's deadline when clamping the
/// batch-wait window: dispatch must happen early enough for the forward
/// pass to beat the deadline, not just the drain. The effective margin is
/// `max(this, remaining_slack / 4)` — see `clamp_window` in `drain_batch`.
const DISPATCH_MARGIN: Duration = Duration::from_micros(200);

/// Steal up to `steal_max` jobs from the deepest peer whose queue depth is
/// at least `threshold`. Non-blocking: the victim's queue is popped
/// through the same DRR discipline its own worker uses (`try_pop`), so
/// even stolen service respects tenant fair shares. Stolen `Job`s move
/// whole, so trace ids, deadlines, tiers, tenants and response channels
/// all survive the migration; the queue guarantees each job is popped
/// exactly once no matter how many thieves race.
fn steal_batch(ctx: &WorkerCtx, thief: usize, threshold: u64) -> Option<Vec<Job>> {
    let threshold = threshold.max(1);
    let (victim, _) = ctx
        .shards
        .iter()
        .enumerate()
        .filter(|&(i, s)| i != thief && s.queue.depth() >= threshold)
        .max_by_key(|(_, s)| s.queue.depth())?;
    let vs = &ctx.shards[victim];
    let mut jobs = Vec::new();
    while jobs.len() < ctx.config.steal_max.max(1) {
        match vs.queue.try_pop() {
            Some(job) => jobs.push(job),
            None => break,
        }
    }
    if jobs.is_empty() {
        return None;
    }
    ctx.shards[thief].steals_from[victim].fetch_add(jobs.len() as u64, Ordering::Relaxed);
    Some(jobs)
}

/// Drain one batch from this shard's queue (or steal one from a
/// backlogged peer). Holding the shard's drain lock across the wait
/// window is deliberate: only one worker of the shard collects at a time
/// (the others are either forwarding a previous batch or parked on the
/// mutex, which is exactly the wait they would otherwise pay on the
/// queue), and under load pops return instantly so the lock hold is one
/// splice. Thieves never take this lock (the queue itself is
/// thread-safe), so holding it while idle cannot stall a peer.
///
/// Fault sites: a worker kill fires *after* taking the drain lock but
/// *before* popping any job — the dying worker holds no request (nothing
/// is lost) but does poison the shard's mutex, exercising both poison
/// recovery in its peers and the supervisor respawn. A queue stall sleeps
/// while holding the lock, stalling every collector behind it.
///
/// The batching window is clamped by every held job's deadline (minus a
/// slack-proportional margin floored at [`DISPATCH_MARGIN`]): a
/// near-deadline request dispatches the batch
/// early instead of expiring behind a `max_wait` computed from a global
/// clock — no request may miss its deadline purely from batch-wait.
fn drain_batch(ctx: &WorkerCtx, shard: usize) -> Option<Vec<Job>> {
    let my = &ctx.shards[shard];
    let drain = lock_recover(&my.drain_lock);
    if ctx
        .injector
        .should_fire(crate::fault::FaultSite::WorkerKill)
    {
        panic!("{INJECTED_PANIC}: worker kill");
    }
    if let Some(stall) = ctx.injector.queue_stall() {
        std::thread::sleep(stall);
    }
    let first = loop {
        match my.queue.pop_timeout(STEAL_POLL) {
            Ok(job) => break job,
            Err(PopError::Timeout) => {
                // Own queue idle: relieve the deepest backlogged peer.
                if let Some(stolen) = steal_batch(ctx, shard, ctx.config.steal_threshold as u64) {
                    return Some(stolen);
                }
            }
            Err(PopError::Closed) => {
                // Shutdown: the queue is closed and this shard's backlog
                // is fully drained. Sweep the peers once for stragglers
                // (threshold 1) so no queued request is ever abandoned,
                // then exit.
                drop(drain);
                return steal_batch(ctx, shard, 1);
            }
        }
    };
    // The span opens after the blocking recv: it measures batch collection,
    // not idle time waiting for the first request.
    let _span = span!("serve_drain");
    let collect_started = Instant::now();
    let config = ctx.config;
    let max_batch = config.max_batch.max(1);
    let min_fill = config.min_fill.clamp(1, max_batch);
    let mut window_closes = collect_started + config.max_wait;
    let clamp_window = |w: Instant, job: &Job| match job.deadline {
        Some(d) => {
            // Headroom scales with the job's remaining slack (¼ of it,
            // floored at DISPATCH_MARGIN): the fixed floor covers the
            // forward pass, the proportional part absorbs sleep overshoot
            // on a loaded machine — a request 50 ms out can afford to
            // dispatch 12 ms early, one 1 ms out cannot.
            let now = Instant::now();
            let margin = (d.saturating_duration_since(now) / 4).max(DISPATCH_MARGIN);
            w.min(d.checked_sub(margin).unwrap_or(now))
        }
        None => w,
    };
    let mut batch = Vec::with_capacity(max_batch);
    window_closes = clamp_window(window_closes, &first);
    batch.push(first);
    while batch.len() < max_batch {
        // Splice in everything already queued — free batching. Pops come
        // through the DRR discipline, so even within one batch every
        // backlogged tenant gets its fair share of the slots.
        if let Some(job) = my.queue.try_pop() {
            window_closes = clamp_window(window_closes, &job);
            batch.push(job);
            continue;
        }
        // Queue empty: dispatch a full-enough batch immediately; wait out
        // the window only while the batch is genuinely small.
        if batch.len() >= min_fill {
            break;
        }
        if Instant::now() >= window_closes {
            break;
        }
        // Yield before parking: on a loaded (or single-core) machine the
        // producers are runnable right now, and letting them run fills the
        // queue in one scheduler pass instead of one futex wake per job.
        std::thread::yield_now();
        if let Some(job) = my.queue.try_pop() {
            window_closes = clamp_window(window_closes, &job);
            batch.push(job);
            continue;
        }
        // Nothing arrived even after yielding — no producer is ready, so
        // park until one submits or the window closes.
        let now = Instant::now();
        if now >= window_closes {
            break;
        }
        match my.queue.pop_timeout(window_closes - now) {
            Ok(job) => {
                window_closes = clamp_window(window_closes, &job);
                batch.push(job);
            }
            Err(PopError::Timeout) | Err(PopError::Closed) => break,
        }
    }
    ctx.metrics
        .drain_us
        .record(collect_started.elapsed().as_micros() as u64);
    Some(batch)
}

/// Per-worker reusable inference scratch: the f32 and int8 model
/// workspaces plus the prediction staging vectors. Buffers grow to the
/// high-water batch size and then the drain loop's forward path stops
/// allocating entirely.
#[derive(Default)]
struct WorkerScratch {
    ws: Workspace,
    qws: QuantWorkspace,
    roots: Vec<f32>,
    ms: Vec<f64>,
}

/// The serving loop for one worker bound to `shard`: drain (or steal) a
/// batch, run it, repeat until the shard's channel disconnects and the
/// final steal sweep comes back empty.
pub(crate) fn worker_loop(ctx: &WorkerCtx, shard: usize) {
    if ctx.config.pin_cores {
        crate::supervisor::pin_current_thread(shard);
    }
    let mut scratch = WorkerScratch::default();
    while let Some(batch) = drain_batch(ctx, shard) {
        process_batch(ctx, shard, batch, &mut scratch);
    }
}

/// Count a breaker transition and journal it through the health plane,
/// stamped with the trace of the request that witnessed it. `BreakerOpened`
/// additionally triggers a diagnostic bundle dump (see
/// [`HealthPlane::emit`]).
fn count_breaker_event(ctx: &WorkerCtx, ev: Option<BreakerEvent>, trace: u64) {
    match ev {
        Some(BreakerEvent::Opened) => {
            ctx.metrics.breaker_opened.inc();
            ctx.health.emit(
                trace,
                LifecycleEvent::BreakerOpened {
                    error_percent: ctx.config.breaker.error_percent as f64,
                },
            );
        }
        Some(BreakerEvent::Closed) => {
            ctx.metrics.breaker_closed.inc();
            ctx.health.emit(trace, LifecycleEvent::BreakerClosed);
        }
        None => {}
    }
}

/// Count and journal a *tenant* breaker transition. Deliberately does not
/// touch the global `serve_breaker_*` counters or the global breaker's
/// journal events: one tenant's trips are that tenant's weather, and the
/// global series stays a clean signal for whole-server incidents.
fn count_tenant_breaker_event(
    ctx: &WorkerCtx,
    tenant: &TenantState,
    ev: Option<BreakerEvent>,
    trace: u64,
) {
    match ev {
        Some(BreakerEvent::Opened) => {
            tenant
                .counters
                .breaker_opened
                .fetch_add(1, Ordering::Relaxed);
            ctx.health.emit(
                trace,
                LifecycleEvent::TenantBreakerOpened {
                    tenant: tenant.name.to_string(),
                    error_percent: ctx.config.breaker.error_percent as f64,
                },
            );
        }
        Some(BreakerEvent::Closed) => {
            tenant
                .counters
                .breaker_closed
                .fetch_add(1, Ordering::Relaxed);
            ctx.health.emit(
                trace,
                LifecycleEvent::TenantBreakerClosed {
                    tenant: tenant.name.to_string(),
                },
            );
        }
        None => {}
    }
}

/// Record a model-path outcome on the breaker that gates this job's
/// traffic: the tenant's own breaker for tenant jobs, the global breaker
/// otherwise. Only meaningful with a fallback configured (no fallback =
/// nothing to degrade to = no breaker).
fn record_breaker_outcome(ctx: &WorkerCtx, tenant: Option<&TenantState>, ok: bool, trace: u64) {
    if ctx.degrade.is_none() {
        return;
    }
    match tenant {
        Some(t) => count_tenant_breaker_event(ctx, t, t.breaker.on_result(ok, false), trace),
        None => {
            if let Some(d) = &ctx.degrade {
                count_breaker_event(ctx, d.breaker.on_result(ok, false), trace);
            }
        }
    }
}

/// Execution-group key: jobs sharing (tenant, adapter, tier) run as one
/// packed forward on one resolved snapshot through one precision tier.
type GroupKey = (Option<Arc<str>>, Option<String>, Tier);

fn process_batch(ctx: &WorkerCtx, shard: usize, batch: Vec<Job>, scratch: &mut WorkerScratch) {
    let _span = span!("serve_process_batch");
    let metrics = &ctx.metrics;
    let drained_at = Instant::now();
    metrics.batches.inc();
    metrics.batch_size.record(batch.len() as u64);

    // Admission-side triage, then group survivors by (tenant, adapter,
    // tier) so each group runs one packed forward on one resolved snapshot
    // through one precision tier — and so one tenant's outcomes feed only
    // its own breaker.
    let mut groups: HashMap<GroupKey, Vec<Job>> = HashMap::new();
    let (mut missed, mut met) = (0u64, 0u64);
    let mut missed_trace = 0u64;
    for job in batch {
        metrics
            .queue_wait_us
            .record(drained_at.duration_since(job.enqueued).as_micros() as u64);
        if job.deadline.is_some_and(|d| drained_at >= d) {
            metrics.expired.inc();
            missed += 1;
            if missed_trace == 0 {
                missed_trace = job.trace;
            }
            // A deadline miss is model-path evidence too: enough of them
            // should trip the breaker into serving (fast) degraded answers
            // rather than missing more deadlines. Tenant jobs feed their
            // own breaker — a slow tenant's misses never poison the global
            // evidence window.
            record_breaker_outcome(ctx, job.tenant.as_deref(), false, job.trace);
            ctx.shards[shard].completed.fetch_add(1, Ordering::Relaxed);
            let _ = job.resp.send(Err(ServeError::DeadlineExceeded));
            continue;
        }
        met += 1;
        groups
            .entry((
                job.tenant.as_ref().map(|t| Arc::clone(&t.name)),
                job.adapter.clone(),
                job.tier,
            ))
            .or_default()
            .push(job);
    }
    // Feed the deadline SLO at batch granularity; the alert (if any) is
    // stamped with the first expired request's trace.
    ctx.health.record_deadlines(missed, met, missed_trace);

    for ((_, adapter, tier), jobs) in groups {
        let tenant = jobs.first().and_then(|j| j.tenant.clone());
        // Resolve the group's model. Tenant requests without an explicit
        // adapter go through the pager when one is configured: resident →
        // the tenant's paged adapter; cold → answered *now*, zero-shot,
        // by the base model with `degraded: true` — never blocked on the
        // loader, never shed.
        let (version, cold) = match (&tenant, &adapter, &ctx.pager) {
            (Some(t), None, Some(pager)) => match pager.resolve(&t.name) {
                PagedResolve::Resident(v) => (v, false),
                PagedResolve::Cold => (ctx.registry.base(), true),
            },
            _ => match ctx.registry.resolve(adapter.as_deref()) {
                Ok(v) => (v, false),
                Err(_) => {
                    let name = adapter.unwrap_or_default();
                    for job in jobs {
                        metrics.unknown_adapter.inc();
                        ctx.shards[shard].completed.fetch_add(1, Ordering::Relaxed);
                        let _ = job.resp.send(Err(ServeError::UnknownAdapter(name.clone())));
                    }
                    continue;
                }
            },
        };

        // The group's spans carry the first member's trace — a whole-group
        // forward has no single owner, so the representative makes the
        // batch's flight-recorder lane joinable with at least one journal
        // chain.
        let group_trace = jobs.first().map_or(0, |j| j.trace);

        // Route the group: model, breaker probe, or straight to fallback.
        // Tenant groups consult the *tenant's* breaker, so one tenant
        // being tripped degrades only that tenant's traffic; tenant-less
        // groups consult the global breaker as always. Either way a
        // breaker only gates when a fallback exists to degrade to.
        let gating = ctx
            .degrade
            .as_ref()
            .map(|d| tenant.as_ref().map_or(&d.breaker, |t| &t.breaker));
        let (use_model, probe) = match gating {
            Some(breaker) => match breaker.gate() {
                BreakerGate::Model => (true, false),
                BreakerGate::Probe => {
                    // `gate()` flips Open→HalfOpen internally without an
                    // event; the probe grant is the observation point.
                    ctx.health
                        .emit(group_trace, LifecycleEvent::BreakerHalfOpen);
                    (true, true)
                }
                BreakerGate::Fallback => (false, false),
            },
            None => (true, false),
        };
        if !use_model {
            respond_degraded(ctx, shard, &version, jobs);
            continue;
        }

        // The whole model path runs under `catch_unwind`, borrowing the
        // jobs: a panic (injected or real) leaves them intact, so the
        // group degrades to the fallback — or fails typed — instead of
        // killing the worker and poisoning the queue.
        let outcome = {
            let _trace = trace_scope(group_trace);
            catch_unwind(AssertUnwindSafe(|| {
                forward_group(ctx, shard, &version, tier, &jobs, scratch)
            }))
        };
        // Outcomes echo to the same breaker that gated (probe included).
        match outcome {
            Ok(group) => {
                match (&gating, &tenant) {
                    (Some(b), Some(t)) => {
                        count_tenant_breaker_event(ctx, t, b.on_result(true, probe), group_trace)
                    }
                    (Some(b), None) => {
                        count_breaker_event(ctx, b.on_result(true, probe), group_trace)
                    }
                    _ => {}
                }
                respond_predictions(
                    ctx,
                    shard,
                    &version,
                    jobs,
                    group,
                    &scratch.ms,
                    drained_at,
                    cold,
                );
            }
            Err(_) => {
                metrics.batch_panics.inc();
                match (&gating, &tenant) {
                    (Some(b), Some(t)) => {
                        count_tenant_breaker_event(ctx, t, b.on_result(false, probe), group_trace)
                    }
                    (Some(b), None) => {
                        count_breaker_event(ctx, b.on_result(false, probe), group_trace)
                    }
                    _ => {}
                }
                if ctx.degrade.is_some() {
                    respond_degraded(ctx, shard, &version, jobs);
                } else {
                    for job in jobs {
                        ctx.shards[shard].completed.fetch_add(1, Ordering::Relaxed);
                        let _ = job.resp.send(Err(ServeError::Internal));
                    }
                }
            }
        }
    }
}

/// What the model path produced for a group (predictions land in
/// `scratch.ms`, aligned with the group's jobs).
struct GroupOutput {
    hit_mask: Vec<bool>,
    stages: Option<StageBreakdown>,
}

/// The model path for one (adapter, tier) group: featurize through the
/// shard-local cache, one packed block-diagonal forward through the routed
/// precision tier. May panic (that is the point — the caller catches it);
/// must not consume the jobs.
fn forward_group(
    ctx: &WorkerCtx,
    shard: usize,
    version: &ModelVersion,
    tier: Tier,
    jobs: &[Job],
    scratch: &mut WorkerScratch,
) -> GroupOutput {
    let metrics = &ctx.metrics;
    let config = ctx.config;
    let est = &version.estimator;
    let cache = &ctx.shards[shard].cache;
    if let Some(delay) = ctx.injector.stage_delay() {
        std::thread::sleep(delay);
    }

    // Featurize through the shard-local cache; misses go through the same
    // sharded path training uses (serial below 64 trees). `featurize_us`
    // keeps its historical meaning (probe + miss featurization); stage
    // timing additionally splits out the probe cost. Both tiers share one
    // cache: features are tier-independent (quantization happens inside
    // the forward, not in the encoding).
    let t_feat = Instant::now();
    // Cache keys are salted with the job's tenant salt (0 for tenant-less
    // traffic, preserving historical keys): two tenants submitting the
    // byte-identical plan can never share — or even observe — each
    // other's cache entries.
    let fingerprints: Vec<u64> = jobs
        .iter()
        .map(|j| {
            est.featurizer.fingerprint(&j.tree) ^ j.tenant.as_ref().map_or(0, |t| t.cache_salt)
        })
        .collect();
    let mut feats: Vec<Option<Arc<PlanFeatures>>> =
        fingerprints.iter().map(|&fp| cache.get(fp)).collect();
    let cache_lookup_us = t_feat.elapsed().as_micros() as u64;
    let hit_mask: Vec<bool> = feats.iter().map(Option::is_some).collect();
    let miss_idx: Vec<usize> = (0..jobs.len()).filter(|&i| feats[i].is_none()).collect();
    if !miss_idx.is_empty() {
        let _span = span!("serve_featurize");
        let miss_trees: Vec<&PlanTree> = miss_idx.iter().map(|&i| &jobs[i].tree).collect();
        let fresh = featurize_trees_sharded(&est.featurizer, &miss_trees, config.featurize_threads);
        for (&i, f) in miss_idx.iter().zip(fresh) {
            let f = Arc::new(f);
            cache.insert(fingerprints[i], Arc::clone(&f));
            feats[i] = Some(f);
        }
    }
    let feats: Vec<Arc<PlanFeatures>> = feats.into_iter().map(Option::unwrap).collect();
    let featurize_us = t_feat.elapsed().as_micros() as u64;
    metrics.featurize_us.record(featurize_us);

    if ctx
        .injector
        .should_fire(crate::fault::FaultSite::BatchPanic)
    {
        panic!("{INJECTED_PANIC}: batch forward panic");
    }

    // One packed block-diagonal forward for the whole group, through the
    // tier the requests were admitted to.
    let t_fwd = Instant::now();
    let refs: Vec<&PlanFeatures> = feats.iter().map(Arc::as_ref).collect();
    let stages = {
        let _span = span!("serve_forward");
        // Predictions land in the worker's reusable scratch
        // (`scratch.ms`, aligned with `jobs`): the steady-state forward
        // path allocates nothing.
        let timings = match tier {
            Tier::Full => est.predict_features_batch_ms_timed_ws(
                &refs,
                &mut scratch.ws,
                &mut scratch.roots,
                &mut scratch.ms,
            ),
            Tier::Quantized => version.quantized.predict_features_batch_ms_timed_ws(
                &refs,
                &mut scratch.qws,
                &mut scratch.roots,
                &mut scratch.ms,
            ),
        };
        if config.stage_timing {
            metrics.cache_lookup_us.record(cache_lookup_us);
            metrics.attention_us.record(timings.attention_us);
            metrics.mlp_us.record(timings.mlp_us);
            Some(StageBreakdown {
                queue_wait_us: 0, // stamped per request below
                cache_lookup_us,
                featurize_us: featurize_us - cache_lookup_us,
                attention_us: timings.attention_us,
                mlp_us: timings.mlp_us,
            })
        } else {
            None
        }
    };
    metrics
        .forward_us
        .record(t_fwd.elapsed().as_micros() as u64);
    GroupOutput { hit_mask, stages }
}

/// Deliver a group's model predictions (`ms` is the scratch-backed slice
/// `forward_group` filled, aligned with `jobs`). `cold` marks zero-shot
/// answers served by the base model because the tenant's adapter was not
/// resident: they are flagged `degraded: true` for the client, but —
/// unlike fallback answers — they *did* come from a real registry
/// snapshot, so they keep the base model's true version stamp rather than
/// [`FALLBACK_VERSION`] (accuracy ledgers attribute them to the model
/// that actually produced the numbers).
#[allow(clippy::too_many_arguments)]
fn respond_predictions(
    ctx: &WorkerCtx,
    shard: usize,
    version: &Arc<ModelVersion>,
    jobs: Vec<Job>,
    group: GroupOutput,
    ms: &[f64],
    drained_at: Instant,
    cold: bool,
) {
    let metrics = &ctx.metrics;
    let group_size = jobs.len();
    let t_resp = Instant::now();
    let _span = span!("serve_respond");
    for ((job, &ms), hit) in jobs.into_iter().zip(ms).zip(group.hit_mask) {
        metrics.completed.inc();
        if cold {
            metrics.cold_start.inc();
        }
        if let Some(t) = &job.tenant {
            t.counters.completed.fetch_add(1, Ordering::Relaxed);
            if cold {
                t.counters.degraded.fetch_add(1, Ordering::Relaxed);
                t.counters.cold_starts.fetch_add(1, Ordering::Relaxed);
            }
        }
        ctx.shards[shard].completed.fetch_add(1, Ordering::Relaxed);
        ctx.health.count_tier(job.tier);
        metrics
            .e2e_us
            .record(job.enqueued.elapsed().as_micros() as u64);
        let stages = group.stages.map(|s| StageBreakdown {
            queue_wait_us: drained_at.duration_since(job.enqueued).as_micros() as u64,
            ..s
        });
        mark!("serve_reply", job.trace);
        let _ = job.resp.send(Ok(Prediction {
            ms,
            adapter: version.adapter.clone(),
            version: version.version,
            batch_size: group_size,
            cache_hit: hit,
            degraded: cold,
            stages,
            trace: job.trace,
            tier: job.tier,
        }));
    }
    metrics
        .respond_us
        .record(t_resp.elapsed().as_micros() as u64);
}

/// Answer a whole group from the fallback estimator, flagged `degraded`.
/// Used both when the breaker gates the group away from the model and when
/// the model path panicked on it. Only callable with a fallback configured.
///
/// The answer is stamped [`FALLBACK_VERSION`], not the version the group
/// resolved: these numbers did not come from that snapshot, and a drift
/// detector ingesting them as model observations would trip on fallback
/// noise (or worse, mask real model drift).
fn respond_degraded(ctx: &WorkerCtx, shard: usize, version: &Arc<ModelVersion>, jobs: Vec<Job>) {
    let metrics = &ctx.metrics;
    let degrade = ctx
        .degrade
        .as_ref()
        .expect("respond_degraded requires a fallback");
    let group_size = jobs.len();
    let _span = span!("serve_respond");
    for job in jobs {
        let ms = degrade.fallback.predict_ms(&job.tree);
        metrics.degraded.inc();
        metrics.completed.inc();
        if let Some(t) = &job.tenant {
            // The answer still consumes only the token its admission
            // charged — degraded answers never double-bill the quota.
            t.counters.completed.fetch_add(1, Ordering::Relaxed);
            t.counters.degraded.fetch_add(1, Ordering::Relaxed);
        }
        ctx.shards[shard].completed.fetch_add(1, Ordering::Relaxed);
        ctx.health.count_tier(job.tier);
        metrics
            .e2e_us
            .record(job.enqueued.elapsed().as_micros() as u64);
        mark!("serve_reply", job.trace);
        let _ = job.resp.send(Ok(Prediction {
            ms,
            adapter: version.adapter.clone(),
            version: FALLBACK_VERSION,
            batch_size: group_size,
            cache_hit: false,
            degraded: true,
            stages: None,
            trace: job.trace,
            // The answer keeps the tier the request was admitted to — the
            // fallback served it, but the ledger splits on routed tier.
            tier: job.tier,
        }));
    }
}
