//! Worker supervision: panic isolation, respawn with capped backoff, and
//! poison-tolerant locking.
//!
//! Every serve worker runs inside `catch_unwind`; a panic (injected or
//! real) kills only that thread, marks its pool slot dirty, and is counted
//! in `serve_worker_panics_total`. A dedicated supervisor thread polls the
//! slots (~1 ms cadence), joins the corpse and respawns a replacement:
//! immediately for an isolated death, with capped exponential backoff when
//! deaths come back-to-back (a crash loop must not become a spawn storm) —
//! except that an *empty* pool is always revived without backoff, because
//! availability beats politeness when nobody is draining the queue.
//!
//! The one failure the supervisor cannot absorb is `thread::spawn` itself
//! failing while no worker is alive; that increments
//! `serve_pool_exhausted_total` (the chaos CI gate asserts it stays zero)
//! and the supervisor keeps retrying every poll — the pool is never
//! abandoned while the server lives.
//!
//! A worker that dies holding the queue lock poisons it; [`lock_recover`]
//! is how every lock site in the crate says "the data is a queue of jobs /
//! a slot handle, not a broken invariant" and keeps going.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::scheduler::{worker_loop, WorkerCtx};

/// Lock a mutex, recovering from poisoning. Used everywhere in this crate
/// where the protected data stays valid across a panic (job queues, slot
/// handles, install serialization) — which is all of them.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort CPU affinity for the calling worker thread: pin shard `k`'s
/// workers to core `k mod available_parallelism`, so a shard's queue, cache
/// and scratch stay warm in one core's private caches. Uses the raw
/// `sched_setaffinity` syscall (the workspace vendors no libc); anything
/// short of Linux/x86_64 — or a kernel that refuses the mask (cgroup cpuset,
/// exotic topology) — silently no-ops, because pinning is an optimization,
/// never a correctness requirement.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) fn pin_current_thread(shard: usize) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let core = shard % cores;
    // cpu_set_t is 1024 bits = 16 u64 words; set exactly one bit.
    let mut mask = [0u64; 16];
    mask[core / 64] = 1u64 << (core % 64);
    unsafe {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret, // SYS_sched_setaffinity
            in("rdi") 0,                    // pid 0 = calling thread
            in("rsi") mask.len() * 8,       // mask size in bytes
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        let _ = ret; // failure is fine: run unpinned
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub(crate) fn pin_current_thread(_shard: usize) {}

/// First respawn delay once a crash loop is suspected (second consecutive
/// death and onward); doubles per consecutive death.
const BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_millis(100);
/// Supervisor poll cadence.
const POLL: Duration = Duration::from_millis(1);
/// Quiet polls after which the consecutive-death counter resets.
const QUIET_POLLS_TO_RESET: u32 = 100;

/// One worker slot: the live thread handle plus the dirty flag its panic
/// wrapper raises on the way out.
struct WorkerSlot {
    handle: Mutex<Option<JoinHandle<()>>>,
    dirty: AtomicBool,
}

/// The supervised worker pool. Owns the worker threads and the supervisor;
/// [`WorkerPool::join`] tears all of it down (after the server has
/// disconnected the queue so workers drain and exit).
pub(crate) struct WorkerPool {
    slots: Arc<Vec<WorkerSlot>>,
    supervisor: Option<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` supervised workers over `ctx` plus the supervisor
    /// thread (none of either when `workers == 0`). Initial spawn failures
    /// are recorded and left to the supervisor to retry — the pool starts
    /// degraded, not dead.
    pub fn start(ctx: Arc<WorkerCtx>, workers: usize) -> WorkerPool {
        let slots: Arc<Vec<WorkerSlot>> = Arc::new(
            (0..workers)
                .map(|_| WorkerSlot {
                    handle: Mutex::new(None),
                    dirty: AtomicBool::new(false),
                })
                .collect(),
        );
        for i in 0..workers {
            match spawn_worker(&ctx, &slots, i) {
                Ok(h) => *lock_recover(&slots[i].handle) = Some(h),
                Err(_) => {
                    ctx.metrics.spawn_failures.inc();
                    slots[i].dirty.store(true, Ordering::Release);
                }
            }
        }
        let supervisor = (workers > 0).then(|| {
            let sctx = Arc::clone(&ctx);
            let sslots = Arc::clone(&slots);
            std::thread::Builder::new()
                .name("dace-serve-supervisor".into())
                .spawn(move || supervise(&sctx, &sslots))
        });
        let supervisor = match supervisor {
            Some(Ok(h)) => Some(h),
            Some(Err(_)) => {
                // No supervisor: workers run unsupervised (panics still
                // isolated and counted, just not respawned). Recorded, not
                // fatal.
                ctx.metrics.spawn_failures.inc();
                None
            }
            None => None,
        };
        WorkerPool { slots, supervisor }
    }

    /// Join the supervisor and every worker. Call only after the job queue
    /// has been disconnected, or workers will never exit.
    pub fn join(mut self) {
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        for slot in self.slots.iter() {
            if let Some(h) = lock_recover(&slot.handle).take() {
                let _ = h.join();
            }
        }
    }
}

/// Spawn one supervised worker into slot `i`: the worker body runs under
/// `catch_unwind`, and a panicking exit raises the slot's dirty flag for
/// the supervisor (and is counted, unless the server is shutting down and
/// the death is moot).
fn spawn_worker(
    ctx: &Arc<WorkerCtx>,
    slots: &Arc<Vec<WorkerSlot>>,
    i: usize,
) -> std::io::Result<JoinHandle<()>> {
    let ctx = Arc::clone(ctx);
    let slots = Arc::clone(slots);
    std::thread::Builder::new()
        .name(format!("dace-serve-{i}"))
        .spawn(move || {
            // Static worker→shard mapping: slot index mod shard count. A
            // respawned worker keeps its slot, so it rejoins the same
            // shard — the supervisor is shard-aware for free.
            let shard = i % ctx.config.shards.max(1);
            if catch_unwind(AssertUnwindSafe(|| worker_loop(&ctx, shard))).is_err() {
                ctx.metrics.worker_panics.inc();
                if !ctx.shutdown.load(Ordering::Acquire) {
                    slots[i].dirty.store(true, Ordering::Release);
                }
            }
            // Clean exit (queue disconnected at shutdown): dirty stays
            // false and the slot rests in peace.
        })
}

/// The supervisor body: poll the slots, bury and replace dead workers.
fn supervise(ctx: &Arc<WorkerCtx>, slots: &Arc<Vec<WorkerSlot>>) {
    let mut consecutive: u32 = 0;
    let mut quiet_polls: u32 = 0;
    while !ctx.shutdown.load(Ordering::Acquire) {
        let mut respawned_this_poll = false;
        for i in 0..slots.len() {
            if !slots[i].dirty.load(Ordering::Acquire) {
                continue;
            }
            respawned_this_poll = true;
            // Clear *before* spawning: a replacement that dies instantly
            // re-raises the flag; clearing after would race it away and
            // orphan the slot.
            slots[i].dirty.store(false, Ordering::Release);
            if let Some(h) = lock_recover(&slots[i].handle).take() {
                let _ = h.join();
            }
            let alive = slots
                .iter()
                .filter(|s| {
                    lock_recover(&s.handle)
                        .as_ref()
                        .is_some_and(|h| !h.is_finished())
                })
                .count();
            // Back off only on a suspected crash loop, and never while the
            // pool is empty — an undrained queue is the worse failure.
            if consecutive > 0 && alive > 0 {
                let shift = (consecutive - 1).min(7);
                std::thread::sleep((BACKOFF_BASE * 2u32.pow(shift)).min(BACKOFF_MAX));
            }
            if ctx.shutdown.load(Ordering::Acquire) {
                return;
            }
            match spawn_worker(ctx, slots, i) {
                Ok(h) => {
                    *lock_recover(&slots[i].handle) = Some(h);
                    ctx.metrics.worker_restarts.inc();
                    consecutive = consecutive.saturating_add(1);
                    ctx.health.emit(
                        0,
                        dace_obs::LifecycleEvent::WorkerRespawned {
                            slot: i as u64,
                            consecutive: u64::from(consecutive),
                        },
                    );
                }
                Err(_) => {
                    ctx.metrics.spawn_failures.inc();
                    if alive == 0 {
                        ctx.metrics.pool_exhausted.inc();
                    }
                    // Re-raise and retry next poll; never abandon the slot.
                    slots[i].dirty.store(true, Ordering::Release);
                }
            }
        }
        if respawned_this_poll {
            quiet_polls = 0;
        } else {
            quiet_polls += 1;
            if quiet_polls >= QUIET_POLLS_TO_RESET {
                consecutive = 0;
                quiet_polls = 0;
            }
        }
        std::thread::sleep(POLL);
    }
}
