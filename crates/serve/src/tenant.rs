//! Multi-tenant isolation: identities, quotas, per-tenant breakers, and
//! the deficit-round-robin weighted-fair shard queue.
//!
//! The serving story of the paper is one estimator hosting many
//! per-(database, machine) adapters — which in production means many
//! *tenants* sharing one process. PR 9's sharded scheduler protects the
//! server from overload; this module protects tenants from **each other**:
//!
//! * [`validate_tenant_id`] — admission-time identity hygiene. Tenant ids
//!   become queue-lane keys, cache salts and Prometheus label values, so
//!   the accepted charset is printable ASCII minus `"` and `\` (the two
//!   bytes that would need escaping in the text exposition format), at
//!   most [`MAX_TENANT_ID_BYTES`] bytes.
//! * [`TokenBucket`] — per-tenant rate quota. Tokens are charged **once at
//!   admission** and refunded only when the request is shed before
//!   enqueue; answers served degraded (fallback or zero-shot cold start)
//!   consume exactly the one token their admission paid, never a second.
//! * [`TenantState`] — one tenant's whole isolation surface: weight,
//!   bucket, in-flight cap, cache salt, its own `CircuitBreaker` (the
//!   PR 5 packed-atomic ring) and a block of monotone counters.
//! * [`ShardQueue`] — replaces the shard's single FIFO with per-tenant
//!   sub-queues drained by deficit round robin: each backlogged lane is
//!   served up to `quantum × weight` jobs per round, so a flooding tenant
//!   fills (and sheds against) only its *own* lane while everyone else
//!   keeps their share of the drain.
//! * [`TenantTable`] — the registry of live tenants, with a
//!   bounded-cardinality Prometheus exposition: exact series for the
//!   top-K tenants by traffic plus one aggregated `tenant="_other"`
//!   bucket, so a million hostile tenant ids cannot blow up the scrape.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

use serde::Serialize;

use crate::fallback::{BreakerConfig, BreakerState, CircuitBreaker};

/// Longest accepted tenant id, in bytes.
pub const MAX_TENANT_ID_BYTES: usize = 64;

/// Validate a tenant id at admission: non-empty, at most
/// [`MAX_TENANT_ID_BYTES`] bytes, printable ASCII (`0x20..=0x7e`)
/// excluding `"` and `\`. The charset is deliberately the safe subset of
/// a Prometheus label value: accepted ids can be interpolated into
/// `tenant="..."` verbatim, so a hostile id can never break label text,
/// smuggle a fake series, or corrupt the journal's JSON framing.
pub fn validate_tenant_id(id: &str) -> Result<(), String> {
    if id.is_empty() {
        return Err("tenant id is empty".to_string());
    }
    if id.len() > MAX_TENANT_ID_BYTES {
        return Err(format!(
            "tenant id is {} bytes (max {MAX_TENANT_ID_BYTES})",
            id.len()
        ));
    }
    for b in id.bytes() {
        if !(0x20..=0x7e).contains(&b) || b == b'"' || b == b'\\' {
            return Err(format!(
                "tenant id contains byte {b:#04x} (printable ASCII without quote/backslash only)"
            ));
        }
    }
    Ok(())
}

/// Tenant-isolation policy knobs. All-integer, so `Copy + Eq` inside
/// `ServeConfig`; per-tenant overrides (weight, quota) are applied at
/// runtime through `DaceServer::set_tenant_weight` /
/// `DaceServer::set_tenant_quota`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Fair-queueing weight assigned to a tenant on first sight.
    pub default_weight: u32,
    /// Base deficit-round-robin quantum: a backlogged tenant is served up
    /// to `quantum × weight` requests per scheduling round. Larger values
    /// favor batch locality; `1` is strict per-request round robin.
    pub quantum: u32,
    /// Token-bucket refill rate in requests/second; `0` = unlimited.
    pub quota_rps: u32,
    /// Token-bucket burst capacity; `0` means "same as `quota_rps`".
    pub quota_burst: u32,
    /// Most requests one tenant may have in flight (queued or executing)
    /// at once; `0` = unlimited.
    pub max_in_flight: u32,
    /// Distinct tenants the table will admit; requests for tenants beyond
    /// this are shed (`ServeError::Overloaded`), existing tenants are
    /// unaffected.
    pub max_tenants: usize,
    /// Tenants exported as exact Prometheus series (ranked by submitted
    /// traffic); everyone else aggregates into `tenant="_other"`.
    pub top_k_series: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            default_weight: 1,
            quantum: 8,
            quota_rps: 0,
            quota_burst: 0,
            max_in_flight: 0,
            max_tenants: 4096,
            top_k_series: 5,
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// FNV-1a over the tenant name, finalized splitmix-style. Used as the
/// featurization-cache salt (fingerprints XOR the salt, so two tenants
/// submitting the identical plan can never share a cache entry) and as
/// the shard-routing seed. Never 0 — that value is reserved for
/// tenant-less traffic, which keeps the legacy single-tenant behavior
/// bit-for-bit.
pub(crate) fn tenant_salt(name: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        z
    }
}

/// A continuous-refill token bucket. Rate and capacity live behind the
/// same mutex as the level so quotas can be retuned at runtime without
/// racing a charge.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    inner: Mutex<BucketInner>,
}

#[derive(Debug)]
struct BucketInner {
    /// Refill rate, tokens/second; `0` = unlimited (every charge
    /// succeeds).
    rate: f64,
    /// Capacity the level saturates at.
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rps: u32, burst: u32) -> TokenBucket {
        let rate = f64::from(rps);
        let burst = if burst > 0 { f64::from(burst) } else { rate };
        TokenBucket {
            inner: Mutex::new(BucketInner {
                rate,
                burst,
                tokens: burst,
                last: Instant::now(),
            }),
        }
    }

    fn refill(inner: &mut BucketInner, now: Instant) {
        let dt = now.duration_since(inner.last).as_secs_f64();
        inner.last = now;
        inner.tokens = (inner.tokens + dt * inner.rate).min(inner.burst);
    }

    /// Take one token; `false` means the quota is exhausted right now.
    fn try_charge(&self) -> bool {
        let mut inner = lock(&self.inner);
        if inner.rate == 0.0 {
            return true;
        }
        Self::refill(&mut inner, Instant::now());
        if inner.tokens >= 1.0 {
            inner.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Return one token (the request it paid for was shed before
    /// enqueue).
    fn refund(&self) {
        let mut inner = lock(&self.inner);
        if inner.rate == 0.0 {
            return;
        }
        let burst = inner.burst;
        inner.tokens = (inner.tokens + 1.0).min(burst);
    }

    fn set_quota(&self, rps: u32, burst: u32) {
        let mut inner = lock(&self.inner);
        let was_unlimited = inner.rate == 0.0;
        Self::refill(&mut inner, Instant::now());
        inner.rate = f64::from(rps);
        inner.burst = if burst > 0 {
            f64::from(burst)
        } else {
            f64::from(rps)
        };
        // A previously unlimited tenant starts with a full bucket: the
        // new quota bounds its rate going forward, it is not a
        // retroactive debt. A tightened finite quota only clamps.
        inner.tokens = if was_unlimited {
            inner.burst
        } else {
            inner.tokens.min(inner.burst)
        };
    }
}

/// Monotone per-tenant counters. The quota-accounting invariant the
/// counter-agreement test pins down: `tokens_charged - tokens_refunded ==
/// submitted` at quiescence — every admitted request paid exactly one
/// token, every rejected one paid zero, and nothing downstream (fallback,
/// zero-shot cold start, deadline miss) charges again.
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub degraded: AtomicU64,
    pub shed: AtomicU64,
    pub quota_rejected: AtomicU64,
    pub cold_starts: AtomicU64,
    pub tokens_charged: AtomicU64,
    pub tokens_refunded: AtomicU64,
    pub breaker_opened: AtomicU64,
    pub breaker_closed: AtomicU64,
}

/// Everything the serve path knows about one tenant. Created lazily on
/// first sight (defaults from [`TenantConfig`]) and shared by `Arc`
/// between the admission path, queued jobs, and the metrics exposition.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub name: Arc<str>,
    /// Fair-queueing weight; read at every push so weight changes apply
    /// on the lane's next activation.
    weight: AtomicU32,
    /// XORed into featurization-cache fingerprints and the shard route:
    /// never 0, so tenant traffic can never collide with the tenant-less
    /// key space.
    pub cache_salt: u64,
    bucket: TokenBucket,
    in_flight: AtomicU32,
    max_in_flight: AtomicU32,
    /// This tenant's own breaker: its panics and deadline misses degrade
    /// only its own traffic to the fallback, and never feed the global
    /// breaker's evidence window.
    pub breaker: CircuitBreaker,
    pub counters: TenantCounters,
}

impl TenantState {
    fn new(name: &str, config: &TenantConfig, breaker: BreakerConfig) -> TenantState {
        TenantState {
            name: Arc::from(name),
            weight: AtomicU32::new(config.default_weight.max(1)),
            cache_salt: tenant_salt(name),
            bucket: TokenBucket::new(config.quota_rps, config.quota_burst),
            in_flight: AtomicU32::new(0),
            max_in_flight: AtomicU32::new(config.max_in_flight),
            breaker: CircuitBreaker::new(breaker),
            counters: TenantCounters::default(),
        }
    }

    pub fn weight(&self) -> u32 {
        self.weight.load(Ordering::Relaxed).max(1)
    }

    pub fn set_weight(&self, weight: u32) {
        self.weight.store(weight.max(1), Ordering::Relaxed);
    }

    pub fn set_quota(&self, rps: u32, burst: u32) {
        self.bucket.set_quota(rps, burst);
    }

    pub fn set_max_in_flight(&self, max: u32) {
        self.max_in_flight.store(max, Ordering::Relaxed);
    }

    /// Charge one quota token; counted so the refund ledger can be
    /// audited.
    pub fn charge_token(&self) -> bool {
        if self.bucket.try_charge() {
            self.counters.tokens_charged.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Refund the admission token of a request shed before enqueue.
    pub fn refund_token(&self) {
        self.bucket.refund();
        self.counters
            .tokens_refunded
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Claim an in-flight slot. The returned guard releases it on drop,
    /// which covers every exit path a job can take — answered, expired,
    /// shed at push, or dropped in a closing queue.
    pub fn acquire_in_flight(self: &Arc<Self>) -> Option<InFlightGuard> {
        let max = self.max_in_flight.load(Ordering::Relaxed);
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if max != 0 && cur >= max {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(InFlightGuard {
                        tenant: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn in_flight(&self) -> u32 {
        self.in_flight.load(Ordering::Relaxed)
    }
}

/// RAII in-flight slot: decrements the owner's counter on drop.
#[derive(Debug)]
pub(crate) struct InFlightGuard {
    tenant: Arc<TenantState>,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.tenant.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Point-in-time view of one tenant (what `serve_bench --tenants` and the
/// isolation tests assert on).
#[derive(Debug, Clone, Serialize)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub tenant: String,
    /// Current fair-queueing weight.
    pub weight: u32,
    /// Requests currently queued or executing.
    pub in_flight: u32,
    /// Requests admitted into a shard queue.
    pub submitted: u64,
    /// Requests answered (model, fallback, or zero-shot cold start).
    pub completed: u64,
    /// Answers flagged `degraded: true`.
    pub degraded: u64,
    /// Requests shed because this tenant's own lane was full.
    pub shed: u64,
    /// Requests rejected by the rate quota or the in-flight cap.
    pub quota_rejected: u64,
    /// Answers served zero-shot by the base model while the tenant's
    /// adapter was not resident.
    pub cold_starts: u64,
    /// Quota tokens charged at admission.
    pub tokens_charged: u64,
    /// Quota tokens refunded on shed.
    pub tokens_refunded: u64,
    /// This tenant's breaker trips.
    pub breaker_opened: u64,
    /// This tenant's breaker recoveries.
    pub breaker_closed: u64,
    /// This tenant's breaker state (`closed` / `open` / `half_open`).
    pub breaker_state: &'static str,
}

/// The registry of live tenants: lazy creation with a hard cardinality
/// cap, lock-free per-tenant state behind `Arc`s, and the
/// bounded-cardinality Prometheus exposition.
#[derive(Debug)]
pub(crate) struct TenantTable {
    config: TenantConfig,
    breaker: BreakerConfig,
    tenants: RwLock<HashMap<Arc<str>, Arc<TenantState>>>,
}

impl TenantTable {
    pub fn new(config: TenantConfig, breaker: BreakerConfig) -> TenantTable {
        TenantTable {
            config,
            breaker,
            tenants: RwLock::new(HashMap::new()),
        }
    }

    /// Look up (or lazily create) a tenant. `None` means the table is at
    /// [`TenantConfig::max_tenants`] — the *new* tenant is shed, existing
    /// tenants are untouched.
    pub fn get_or_create(&self, name: &str) -> Option<Arc<TenantState>> {
        if let Some(t) = self
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Some(Arc::clone(t));
        }
        let mut map = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(t) = map.get(name) {
            return Some(Arc::clone(t));
        }
        if map.len() >= self.config.max_tenants.max(1) {
            return None;
        }
        let t = Arc::new(TenantState::new(name, &self.config, self.breaker));
        map.insert(Arc::clone(&t.name), Arc::clone(&t));
        Some(t)
    }

    pub fn get(&self, name: &str) -> Option<Arc<TenantState>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(Arc::clone)
    }

    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let map = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<TenantSnapshot> = map
            .values()
            .map(|t| {
                let c = &t.counters;
                TenantSnapshot {
                    tenant: t.name.to_string(),
                    weight: t.weight(),
                    in_flight: t.in_flight(),
                    submitted: c.submitted.load(Ordering::Relaxed),
                    completed: c.completed.load(Ordering::Relaxed),
                    degraded: c.degraded.load(Ordering::Relaxed),
                    shed: c.shed.load(Ordering::Relaxed),
                    quota_rejected: c.quota_rejected.load(Ordering::Relaxed),
                    cold_starts: c.cold_starts.load(Ordering::Relaxed),
                    tokens_charged: c.tokens_charged.load(Ordering::Relaxed),
                    tokens_refunded: c.tokens_refunded.load(Ordering::Relaxed),
                    breaker_opened: c.breaker_opened.load(Ordering::Relaxed),
                    breaker_closed: c.breaker_closed.load(Ordering::Relaxed),
                    breaker_state: match t.breaker.state() {
                        BreakerState::Closed => "closed",
                        BreakerState::Open => "open",
                        BreakerState::HalfOpen => "half_open",
                    },
                }
            })
            .collect();
        out.sort_by(|a, b| b.submitted.cmp(&a.submitted).then(a.tenant.cmp(&b.tenant)));
        out
    }

    /// Bounded-cardinality per-tenant exposition: exact `tenant="..."`
    /// series for the top-K tenants by submitted traffic plus one
    /// aggregated `tenant="_other"` bucket per family. Empty when no
    /// tenant has been seen, so single-tenant deployments pay nothing on
    /// the scrape. Label values are safe to interpolate verbatim —
    /// [`validate_tenant_id`] rejected everything that would need
    /// escaping before the tenant could exist.
    pub fn prometheus_text(&self, top_k: usize) -> String {
        use std::fmt::Write;
        /// One exported family: metric name, HELP text, counter accessor.
        type Family = (&'static str, &'static str, fn(&TenantSnapshot) -> u64);
        let snaps = self.snapshot();
        if snaps.is_empty() {
            return String::new();
        }
        let k = top_k.max(1).min(snaps.len());
        let (exact, rest) = snaps.split_at(k);
        let mut out = String::new();
        let families: [Family; 6] = [
            (
                "serve_tenant_submitted_total",
                "Requests admitted per tenant (top-K exact, rest in _other).",
                |s| s.submitted,
            ),
            (
                "serve_tenant_completed_total",
                "Requests answered per tenant.",
                |s| s.completed,
            ),
            (
                "serve_tenant_degraded_total",
                "Degraded-flagged answers per tenant.",
                |s| s.degraded,
            ),
            (
                "serve_tenant_shed_total",
                "Requests shed at the tenant's own full lane.",
                |s| s.shed,
            ),
            (
                "serve_tenant_quota_rejected_total",
                "Requests rejected by the tenant's quota or in-flight cap.",
                |s| s.quota_rejected,
            ),
            (
                "serve_tenant_cold_start_total",
                "Zero-shot base-model answers while the adapter was not resident.",
                |s| s.cold_starts,
            ),
        ];
        for (name, help, get) in families {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for s in exact {
                let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", s.tenant, get(s));
            }
            if !rest.is_empty() {
                let sum: u64 = rest.iter().map(get).sum();
                let _ = writeln!(out, "{name}{{tenant=\"_other\"}} {sum}");
            }
        }
        out
    }
}

/// Why a push was refused. The job comes back with the error so the
/// caller can refund its admission (drop its in-flight guard, return its
/// quota token).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The tenant's own lane is at capacity — only this tenant sheds.
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

/// Why a pop came back empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PopError {
    /// Nothing arrived within the wait window.
    Timeout,
    /// Closed *and* fully drained — the worker may exit. A closed queue
    /// that still holds jobs keeps handing them out: shutdown drains, it
    /// never drops.
    Closed,
}

/// One tenant's sub-queue inside a shard.
#[derive(Debug)]
struct Lane<T> {
    jobs: VecDeque<T>,
    weight: u32,
}

#[derive(Debug)]
struct QueueInner<T> {
    lanes: Vec<Lane<T>>,
    by_key: HashMap<Arc<str>, usize>,
    /// Backlogged lanes awaiting service, in activation order. A lane
    /// index is here *xor* is `current` *xor* is empty.
    active: VecDeque<usize>,
    /// The lane being served and its remaining deficit. Always
    /// backlogged.
    current: Option<(usize, u64)>,
    closed: bool,
}

/// A shard's bounded multi-lane queue, drained by deficit round robin.
///
/// Every tenant gets its own lane with its own `per_lane_cap` slots (the
/// shard's `queue_depth`), so backpressure is per tenant: a flooder fills
/// only its own lane and sheds only its own traffic, and with a single
/// lane the queue reproduces the old single-FIFO scheduler exactly —
/// same capacity, same FIFO order, same close-then-drain shutdown.
///
/// Scheduling: the current lane is served until its deficit
/// (`quantum × weight`, reset at each activation) is spent or its backlog
/// drains; a lane with residual backlog rotates to the tail of the
/// active ring. Service within a lane is FIFO. Per round, every
/// backlogged lane therefore gets at least `quantum × weight` slots —
/// the starvation-freedom bound the property test pins down.
#[derive(Debug)]
pub(crate) struct ShardQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    /// Lock-free mirror of the total backlog, for thieves picking a
    /// victim and the depth gauge.
    depth: AtomicU64,
    per_lane_cap: usize,
    quantum: u64,
}

impl<T> ShardQueue<T> {
    pub fn new(per_lane_cap: usize, quantum: u32) -> ShardQueue<T> {
        ShardQueue {
            inner: Mutex::new(QueueInner {
                lanes: Vec::new(),
                by_key: HashMap::new(),
                active: VecDeque::new(),
                current: None,
                closed: false,
            }),
            cv: Condvar::new(),
            depth: AtomicU64::new(0),
            per_lane_cap: per_lane_cap.max(1),
            quantum: u64::from(quantum.max(1)),
        }
    }

    /// Total jobs queued across all lanes (relaxed; exact at quiescence).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Enqueue into `key`'s lane. On refusal the item comes back so its
    /// admission state can be unwound.
    pub fn push(&self, key: &Arc<str>, weight: u32, item: T) -> Result<(), (PushError, T)> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        let idx = match inner.by_key.get(key) {
            Some(&i) => i,
            None => {
                let i = inner.lanes.len();
                inner.lanes.push(Lane {
                    jobs: VecDeque::new(),
                    weight,
                });
                inner.by_key.insert(Arc::clone(key), i);
                i
            }
        };
        inner.lanes[idx].weight = weight.max(1);
        if inner.lanes[idx].jobs.len() >= self.per_lane_cap {
            return Err((PushError::Full, item));
        }
        let was_idle = inner.lanes[idx].jobs.is_empty();
        inner.lanes[idx].jobs.push_back(item);
        if was_idle {
            // An empty lane is never `current` (pops clear it), so
            // activation is unconditional.
            inner.active.push_back(idx);
        }
        drop(inner);
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
        Ok(())
    }

    fn pop_locked(inner: &mut QueueInner<T>, quantum: u64) -> Option<T> {
        loop {
            let (idx, deficit) = match inner.current.take() {
                Some(c) => c,
                None => {
                    let idx = inner.active.pop_front()?;
                    let w = u64::from(inner.lanes[idx].weight.max(1));
                    (idx, quantum * w)
                }
            };
            let Some(job) = inner.lanes[idx].jobs.pop_front() else {
                // Defensive: an empty lane should never be scheduled;
                // skip it rather than spin.
                continue;
            };
            let deficit = deficit - 1;
            if inner.lanes[idx].jobs.is_empty() {
                // Drained: credit does not carry across idle periods
                // (lanes restart with a fresh deficit — idleness buys no
                // burst later).
            } else if deficit == 0 {
                inner.active.push_back(idx);
            } else {
                inner.current = Some((idx, deficit));
            }
            return Some(job);
        }
    }

    /// Dequeue without blocking (thieves, batch splicing).
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = lock(&self.inner);
        let job = Self::pop_locked(&mut inner, self.quantum)?;
        drop(inner);
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Some(job)
    }

    /// Dequeue, waiting up to `timeout` for an arrival. A closed queue
    /// keeps draining; [`PopError::Closed`] is returned only once it is
    /// also empty.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock(&self.inner);
        loop {
            if let Some(job) = Self::pop_locked(&mut inner, self.quantum) {
                drop(inner);
                self.depth.fetch_sub(1, Ordering::Relaxed);
                return Ok(job);
            }
            if inner.closed {
                return Err(PopError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PopError::Timeout);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Stop accepting pushes and wake every parked worker. Queued jobs
    /// stay poppable until drained.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn validate_accepts_sane_ids_and_rejects_hostile_ones() {
        for ok in [
            "a",
            "tenant-7",
            "db_eu.west/replica:2",
            "x".repeat(64).as_str(),
        ] {
            assert!(validate_tenant_id(ok).is_ok(), "{ok:?} should be valid");
        }
        for bad in [
            "",
            "x".repeat(65).as_str(),
            "a\"b",
            "a\\b",
            "tab\there",
            "new\nline",
            "nul\0",
            "émigré",
        ] {
            assert!(
                validate_tenant_id(bad).is_err(),
                "{bad:?} should be invalid"
            );
        }
    }

    #[test]
    fn tenant_salt_is_stable_nonzero_and_distinct() {
        assert_eq!(tenant_salt("alice"), tenant_salt("alice"));
        assert_ne!(tenant_salt("alice"), tenant_salt("bob"));
        assert_ne!(tenant_salt("alice"), 0);
        assert_ne!(tenant_salt(""), 0);
    }

    #[test]
    fn bucket_charges_refunds_and_refills() {
        let b = TokenBucket::new(10, 2);
        assert!(b.try_charge());
        assert!(b.try_charge());
        assert!(!b.try_charge(), "burst of 2 exhausted");
        b.refund();
        assert!(b.try_charge(), "refund restores a token");
        std::thread::sleep(Duration::from_millis(150));
        assert!(b.try_charge(), "10 rps refills within 150 ms");
        // Unlimited bucket never rejects and refunds are no-ops.
        let unlimited = TokenBucket::new(0, 0);
        for _ in 0..1000 {
            assert!(unlimited.try_charge());
        }
    }

    #[test]
    fn single_lane_queue_is_a_bounded_fifo() {
        let q: ShardQueue<u32> = ShardQueue::new(3, 4);
        let k = key("");
        assert!(q.push(&k, 1, 1).is_ok());
        assert!(q.push(&k, 1, 2).is_ok());
        assert!(q.push(&k, 1, 3).is_ok());
        let (e, v) = q.push(&k, 1, 4).unwrap_err();
        assert_eq!((e, v), (PushError::Full, 4));
        assert_eq!(q.depth(), 3);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_lane_sheds_only_its_own_tenant() {
        let q: ShardQueue<u32> = ShardQueue::new(2, 4);
        let (noisy, quiet) = (key("noisy"), key("quiet"));
        assert!(q.push(&noisy, 1, 0).is_ok());
        assert!(q.push(&noisy, 1, 1).is_ok());
        assert_eq!(q.push(&noisy, 1, 2).unwrap_err().0, PushError::Full);
        // The flooded lane does not consume the quiet tenant's capacity.
        assert!(q.push(&quiet, 1, 10).is_ok());
        assert!(q.push(&quiet, 1, 11).is_ok());
    }

    #[test]
    fn drr_shares_service_by_weight() {
        // Weight 3 vs weight 1, quantum 2: each round serves up to 6 of
        // `heavy` then up to 2 of `light`.
        let q: ShardQueue<(u8, u32)> = ShardQueue::new(64, 2);
        let (heavy, light) = (key("heavy"), key("light"));
        for i in 0..12 {
            q.push(&heavy, 3, (0, i)).unwrap();
            q.push(&light, 1, (1, i)).unwrap();
        }
        let order: Vec<u8> = std::iter::from_fn(|| q.try_pop()).map(|(t, _)| t).collect();
        assert_eq!(order.len(), 24);
        let first_round: Vec<u8> = order[..8].to_vec();
        assert_eq!(first_round, [0, 0, 0, 0, 0, 0, 1, 1]);
        // Overall service is exactly 3:1 until a lane drains.
        let heavy_in_16 = order[..16].iter().filter(|&&t| t == 0).count();
        assert_eq!(heavy_in_16, 12);
    }

    #[test]
    fn closed_queue_drains_then_reports_closed() {
        let q: ShardQueue<u32> = ShardQueue::new(8, 4);
        let k = key("t");
        q.push(&k, 1, 1).unwrap();
        q.push(&k, 1, 2).unwrap();
        q.close();
        assert_eq!(q.push(&k, 1, 3).unwrap_err().0, PushError::Closed);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Ok(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Ok(2));
        assert_eq!(
            q.pop_timeout(Duration::from_millis(1)),
            Err(PopError::Closed)
        );
    }

    #[test]
    fn pop_timeout_times_out_on_an_open_empty_queue() {
        let q: ShardQueue<u32> = ShardQueue::new(8, 4);
        let t0 = Instant::now();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            Err(PopError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn close_wakes_a_parked_popper() {
        let q: Arc<ShardQueue<u32>> = Arc::new(ShardQueue::new(8, 4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PopError::Closed));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite: WFQ starvation-freedom. Under any weight assignment
        /// and adversarial arrival interleaving, every backlogged lane
        /// with weight > 0 is served within one full rotation — the gap
        /// between consecutive serves of a still-backlogged lane never
        /// exceeds Σ quantum × weight over all lanes.
        #[test]
        fn drr_never_starves_a_backlogged_lane(
            weights in proptest::collection::vec(1u32..=8, 2..=6),
            arrivals in proptest::collection::vec(0usize..6, 1..200),
            quantum in 1u32..=4,
        ) {
            let lanes = weights.len();
            let q: ShardQueue<usize> = ShardQueue::new(512, quantum);
            let keys: Vec<Arc<str>> = (0..lanes).map(|i| Arc::from(format!("t{i}"))).collect();
            let mut pushed = vec![0usize; lanes];
            for &a in &arrivals {
                let lane = a % lanes;
                q.push(&keys[lane], weights[lane], lane).unwrap();
                pushed[lane] += 1;
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.try_pop()).collect();
            prop_assert_eq!(order.len(), arrivals.len());
            // Per-lane conservation: everything pushed comes back out.
            let mut popped = vec![0usize; lanes];
            for &l in &order {
                popped[l] += 1;
            }
            prop_assert_eq!(&popped, &pushed);
            // Starvation bound: while a lane still has backlog, it is
            // served at least once per `bound` consecutive pops.
            let bound: usize = weights
                .iter()
                .map(|&w| (quantum as usize) * (w as usize))
                .sum();
            let mut remaining = pushed.clone();
            let mut since_served = vec![0usize; lanes];
            for &l in &order {
                for lane in 0..lanes {
                    if remaining[lane] > 0 && lane != l {
                        since_served[lane] += 1;
                        prop_assert!(
                            since_served[lane] <= bound,
                            "lane {} starved for {} pops (bound {})",
                            lane, since_served[lane], bound
                        );
                    }
                }
                since_served[l] = 0;
                remaining[l] -= 1;
            }
        }

        /// Hostile tenant ids never panic the validator, and everything it
        /// accepts is safe to embed in a Prometheus label verbatim.
        #[test]
        fn validator_is_total_and_accepts_only_label_safe_ids(
            id in proptest::collection::vec(0u8..=255, 0..80)
                .prop_map(|b| String::from_utf8_lossy(&b).into_owned()),
        ) {
            match validate_tenant_id(&id) {
                Ok(()) => {
                    prop_assert!(!id.is_empty() && id.len() <= MAX_TENANT_ID_BYTES);
                    prop_assert!(id.bytes().all(|b| (0x20..=0x7e).contains(&b)
                        && b != b'"' && b != b'\\'));
                    // A label value embedding the id round-trips: no
                    // quote/backslash/newline means no escaping needed.
                    let label = format!("x{{tenant=\"{id}\"}}");
                    prop_assert!(label.lines().count() == 1);
                }
                Err(reason) => prop_assert!(!reason.is_empty()),
            }
        }
    }
}
