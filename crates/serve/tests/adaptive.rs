//! The adaptive loop, end to end: drift-detector properties, the
//! observe → retrain → shadow-eval → swap pipeline, and its chaos modes
//! (mid-retrain crash, sabotaged candidate, corrupt promotion checkpoint,
//! swap under racing clients).

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dace_serve::{
    silence_injected_panics, AdaptiveConfig, AdaptiveController, DaceServer, DriftConfig,
    DriftDetector, FaultConfig, FaultInjector, MetricsRegistry, ModelRegistry, Prediction,
    ServeConfig, FALLBACK_VERSION,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Drift-detector properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A stationary q-error stream (bounded jitter well inside the trip
    /// ratio) never trips, no matter its level or length.
    #[test]
    fn stationary_stream_never_trips(
        base in 1.0f64..50.0,
        jitter in proptest::collection::vec(0.0f64..0.2, 200),
    ) {
        let mut d = DriftDetector::new(DriftConfig {
            min_samples: 32,
            window: 32,
            quantile: 0.9,
            ratio: 1.5,
            check_every: 1,
            cooldown: 0,
        });
        // Warmup at the base level.
        for _ in 0..32 {
            prop_assert!(d.push(base).is_none());
        }
        // Stationary traffic: at most +20% jitter, ratio is 1.5.
        for j in jitter {
            prop_assert!(d.push(base * (1.0 + j)).is_none());
        }
    }

    /// A sustained shift beyond the trip ratio is *guaranteed* to trip once
    /// the window has turned over, whatever the baseline level.
    #[test]
    fn sustained_shift_always_trips(
        base in 1.0f64..50.0,
        shift in 1.6f64..10.0,
        window in 4usize..64,
    ) {
        let mut d = DriftDetector::new(DriftConfig {
            min_samples: 16,
            window,
            quantile: 0.9,
            ratio: 1.5,
            check_every: 1,
            cooldown: 0,
        });
        for _ in 0..16 {
            d.push(base);
        }
        let mut tripped = None;
        for i in 0..window {
            if let Some(t) = d.push(base * shift) {
                tripped = Some((i, t));
                break;
            }
        }
        let (at, trip) = tripped.expect("sustained shift past ratio must trip");
        // The trip cannot come before the window is all-shifted...
        prop_assert_eq!(at, window - 1);
        // ...and must report the shifted quantile over the frozen baseline.
        prop_assert!((trip.baseline_q - base).abs() < 1e-9);
        prop_assert!(trip.window_q >= base * shift - 1e-9);
    }

    /// Eviction: pre-shift history ages out of the sliding window, so a
    /// shift still trips no matter how long the clean prefix was.
    #[test]
    fn window_evicts_old_samples(
        prefix in 0usize..500,
        shift in 2.0f64..8.0,
    ) {
        let window = 16usize;
        let mut d = DriftDetector::new(DriftConfig {
            min_samples: 8,
            window,
            quantile: 0.9,
            ratio: 1.5,
            check_every: 1,
            cooldown: 0,
        });
        for _ in 0..8 {
            d.push(1.0);
        }
        // Arbitrarily long clean run after warmup.
        for _ in 0..prefix {
            prop_assert!(d.push(1.0).is_none());
        }
        // The shift needs exactly one window turnover to trip.
        let mut tripped = false;
        for _ in 0..window {
            if d.push(shift).is_some() {
                tripped = true;
                break;
            }
        }
        prop_assert!(tripped, "clean history must age out of the window");
    }
}

// ---------------------------------------------------------------------------
// End-to-end loop
// ---------------------------------------------------------------------------

/// Drift/retrain knobs tuned for test speed: tiny warmup and window, one
/// full window of drifted traffic trips, and the retrain is a short LoRA
/// fine-tune.
fn quick_adaptive_config() -> AdaptiveConfig {
    AdaptiveConfig {
        buffer_capacity: 4096,
        drift: DriftConfig {
            min_samples: 8,
            window: 64,
            quantile: 0.9,
            ratio: 1.5,
            check_every: 64,
            cooldown: 256,
        },
        retrain_epochs: 10,
        retrain_lr: 2e-3,
        holdback_fraction: 0.25,
        min_retrain_samples: 24,
        retrain_window: 4096,
        shadow_quantile: 0.9,
        promote_margin: 1.0,
        probation_samples: 32,
        probation_margin: 2.0,
        checkpoint_dir: None,
        db_id: 0,
    }
}

fn model_prediction(registry: &ModelRegistry, tree: &dace_plan::PlanTree) -> Prediction {
    let base = registry.base();
    Prediction {
        ms: base.estimator.predict_ms(tree),
        adapter: None,
        version: base.version,
        batch_size: 1,
        cache_hit: false,
        degraded: false,
        stages: None,
        trace: 0,
        tier: dace_serve::Tier::Full,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dace-adaptive-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Drive the loop into drift: feed `n` observations whose actual latency is
/// `drift_factor ×` the label the model was trained on.
fn feed(
    ctrl: &Arc<AdaptiveController>,
    registry: &ModelRegistry,
    data: &dace_plan::Dataset,
    n: usize,
    drift_factor: f64,
) {
    for i in 0..n {
        let plan = &data.plans[i % data.len()];
        let pred = model_prediction(registry, &plan.tree);
        ctrl.observe(&plan.tree, &pred, plan.latency_ms() * drift_factor);
    }
}

/// Post-swap accuracy on the drifted distribution: q-error p90 of the
/// *current* base model against `drift_factor ×` labels.
fn q90_under_drift(registry: &ModelRegistry, data: &dace_plan::Dataset, drift_factor: f64) -> f64 {
    let base = registry.base();
    let mut qs: Vec<f64> = data
        .plans
        .iter()
        .map(|p| {
            dace_serve::q_error(
                base.estimator.predict_ms(&p.tree),
                p.latency_ms() * drift_factor,
            )
        })
        .collect();
    dace_core::quantile(&mut qs, 0.9).unwrap()
}

#[test]
fn degraded_answers_are_rejected_not_ingested() {
    let (est, train) = common::quick_estimator(11);
    let registry = Arc::new(ModelRegistry::new(est));
    let metrics = MetricsRegistry::new();
    let ctrl = AdaptiveController::new(Arc::clone(&registry), &metrics, quick_adaptive_config());

    let plan = &train.plans[0];
    let mut pred = model_prediction(&registry, &plan.tree);
    pred.degraded = true;
    pred.version = FALLBACK_VERSION;
    for _ in 0..50 {
        ctrl.observe(&plan.tree, &pred, plan.latency_ms());
    }
    // Also reject the sentinel alone (belt and braces — respond_degraded
    // sets both).
    let mut sentinel_only = model_prediction(&registry, &plan.tree);
    sentinel_only.version = FALLBACK_VERSION;
    ctrl.observe(&plan.tree, &sentinel_only, plan.latency_ms());

    let m = ctrl.metrics();
    assert_eq!(m.samples.get(), 0, "degraded answers must not be ingested");
    assert_eq!(m.samples_rejected_degraded.get(), 51);
    assert!(ctrl.buffer().is_empty());
    assert!(ctrl.drift_baseline().is_none());
}

#[test]
fn drift_trips_retrain_promotes_and_accuracy_recovers() {
    let (est, train) = common::quick_estimator(7);
    let registry = Arc::new(ModelRegistry::new(est));
    let metrics = MetricsRegistry::new();
    let dir = temp_dir("promote");
    let mut config = quick_adaptive_config();
    config.checkpoint_dir = Some(dir.clone()); // promotion via crash-safe artifact
    let ctrl = AdaptiveController::with_faults(
        Arc::clone(&registry),
        &metrics,
        config,
        Arc::new(FaultInjector::new(FaultConfig::disabled())),
    );
    let v0 = registry.base().version;

    // Clean traffic: warmup freezes a healthy baseline, no trips.
    feed(&ctrl, &registry, &train, 16, 1.0);
    assert!(ctrl.drift_baseline().is_some());
    assert_eq!(ctrl.metrics().drift_trips.get(), 0);

    let drift = 6.0;
    let pre_q90 = q90_under_drift(&registry, &train, drift);
    assert!(
        pre_q90 > 3.0,
        "6× drift must hurt the stale model: {pre_q90}"
    );

    // Drifted traffic: one full window trips the detector and spawns the
    // background retrain.
    feed(&ctrl, &registry, &train, 64, drift);
    assert!(ctrl.metrics().drift_trips.get() >= 1, "drift must trip");
    ctrl.join();

    let m = ctrl.metrics();
    assert_eq!(m.retrains_started.get(), 1);
    assert_eq!(m.promotions.get(), 1, "candidate must be promoted");
    assert_eq!(m.retrains_succeeded.get(), 1);
    assert_eq!(m.retrains_failed.get(), 0);
    assert!(
        registry.base().version > v0,
        "swap must publish a new version"
    );

    // The retrained model must actually fix the drift.
    let post_q90 = q90_under_drift(&registry, &train, drift);
    assert!(
        post_q90 < pre_q90 * 0.7,
        "post-swap q90 {post_q90} must improve on pre-swap {pre_q90}"
    );

    // Probation: healthy live traffic from the new model confirms the
    // promotion — no rollback.
    feed(&ctrl, &registry, &train, 40, drift);
    assert_eq!(
        ctrl.metrics().rollbacks.get(),
        0,
        "clean run must not roll back"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sabotaged_candidate_is_rejected_and_last_good_serves() {
    silence_injected_panics();
    let (est, train) = common::quick_estimator(13);
    let registry = Arc::new(ModelRegistry::new(est));
    let metrics = MetricsRegistry::new();
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        seed: 42,
        sabotage_ppm: 1_000_000, // every candidate is sabotaged
        ..FaultConfig::disabled()
    }));
    let ctrl = AdaptiveController::with_faults(
        Arc::clone(&registry),
        &metrics,
        quick_adaptive_config(),
        injector,
    );
    let v0 = registry.base().version;

    feed(&ctrl, &registry, &train, 16, 1.0);
    feed(&ctrl, &registry, &train, 64, 6.0);
    ctrl.join();

    let m = ctrl.metrics();
    assert!(m.retrains_started.get() >= 1);
    assert_eq!(
        m.promotions.get(),
        0,
        "a sabotaged candidate must never ship"
    );
    assert!(
        m.retrains_rolled_back.get() >= 1,
        "shadow eval must reject the sabotaged candidate"
    );
    assert_eq!(
        registry.base().version,
        v0,
        "last-good must keep serving untouched"
    );
    let p = registry.base().estimator.predict_ms(&train.plans[0].tree);
    assert!(p.is_finite() && p > 0.0);
}

#[test]
fn mid_retrain_crash_releases_latch_and_allows_next_attempt() {
    silence_injected_panics();
    let (est, train) = common::quick_estimator(17);
    let registry = Arc::new(ModelRegistry::new(est));
    let metrics = MetricsRegistry::new();
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        seed: 7,
        retrain_crash_ppm: 1_000_000, // every retrain dies mid-flight
        ..FaultConfig::disabled()
    }));
    let mut config = quick_adaptive_config();
    config.drift.cooldown = 64; // re-arm quickly so a second trip can fire
    let ctrl = AdaptiveController::with_faults(Arc::clone(&registry), &metrics, config, injector);
    let v0 = registry.base().version;

    feed(&ctrl, &registry, &train, 16, 1.0);
    feed(&ctrl, &registry, &train, 64, 6.0);
    ctrl.join();
    let m = ctrl.metrics();
    assert_eq!(m.retrains_started.get(), 1);
    assert_eq!(m.retrains_failed.get(), 1, "injected crash must be counted");
    assert_eq!(m.promotions.get(), 0);
    assert!(!ctrl.retrain_inflight(), "crash must release the latch");

    // The loop survives: after cooldown the detector trips again and the
    // (recovered) latch lets a second retrain spawn.
    feed(&ctrl, &registry, &train, 64 + 64, 6.0);
    ctrl.join();
    assert!(
        ctrl.metrics().retrains_started.get() >= 2,
        "latch must allow another retrain after a crash"
    );
    assert_eq!(
        registry.base().version,
        v0,
        "serving model untouched throughout"
    );
}

#[test]
fn corrupt_promotion_checkpoint_keeps_last_good() {
    silence_injected_panics();
    let (est, train) = common::quick_estimator(19);
    let registry = Arc::new(ModelRegistry::new(est));
    let metrics = MetricsRegistry::new();
    let dir = temp_dir("corrupt");
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        seed: 3,
        checkpoint_corrupt_ppm: 1_000_000, // every promotion artifact is torn
        ..FaultConfig::disabled()
    }));
    let mut config = quick_adaptive_config();
    config.checkpoint_dir = Some(dir.clone());
    let ctrl = AdaptiveController::with_faults(Arc::clone(&registry), &metrics, config, injector);
    let v0 = registry.base().version;

    feed(&ctrl, &registry, &train, 16, 1.0);
    feed(&ctrl, &registry, &train, 64, 6.0);
    ctrl.join();

    let m = ctrl.metrics();
    assert!(m.retrains_started.get() >= 1);
    assert_eq!(
        m.promotions.get(),
        0,
        "a torn artifact must not be installed"
    );
    assert!(
        m.retrains_failed.get() >= 1,
        "the reload failure must be counted"
    );
    assert_eq!(registry.base().version, v0, "last-good keeps serving");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swap_under_racing_clients_never_tears_a_version() {
    let (est, train) = common::quick_estimator(23);
    let registry = Arc::new(ModelRegistry::new(est));
    let metrics = MetricsRegistry::new();
    let server = DaceServer::new(Arc::clone(&registry), ServeConfig::default());
    let ctrl = AdaptiveController::new(Arc::clone(&registry), &metrics, quick_adaptive_config());
    let v0 = registry.base().version;

    // Clients hammer the server while the adaptive loop swaps underneath.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for t in 0..4 {
            let server = &server;
            let registry = Arc::clone(&registry);
            let train = &train;
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let plan = &train.plans[i % train.len()];
                    let pred = server.predict(&plan.tree).expect("serving must not fail");
                    assert!(
                        pred.ms.is_finite() && pred.ms > 0.0,
                        "prediction must stay finite across swaps"
                    );
                    let published = registry.versions_published();
                    assert!(
                        pred.version < published.max(1) || pred.version == FALLBACK_VERSION,
                        "version {} torn: only {} published",
                        pred.version,
                        published
                    );
                    i += 1;
                }
            });
        }
        // Main thread drives the loop to a promotion under the racing load.
        feed(&ctrl, &registry, &train, 16, 1.0);
        feed(&ctrl, &registry, &train, 64, 6.0);
        ctrl.join();
        // Confirm the promotion through probation, still under load.
        feed(&ctrl, &registry, &train, 40, 6.0);
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(ctrl.metrics().promotions.get(), 1);
    assert!(registry.base().version > v0);
    assert_eq!(ctrl.metrics().rollbacks.get(), 0);
    server.shutdown();
}
