//! Chaos suite: deterministic fault injection against a live server.
//!
//! Every test here runs real worker threads with the seeded
//! [`FaultInjector`] firing panics, kills, stalls, and delays, and asserts
//! the robustness contract: requests are answered (degraded where
//! necessary, typed-failed where no fallback exists), the pool self-heals,
//! and nothing ever crashes the process.

mod common;

use std::sync::Arc;
use std::time::Duration;

use dace_plan::{NodeType, OpPayload, PlanNode, PlanValidationError, TreeBuilder};
use dace_serve::{
    silence_injected_panics, BreakerConfig, BreakerState, CostLinearFallback, DaceServer,
    FaultConfig, ModelRegistry, ServeConfig, ServeError,
};

/// A server wired for chaos: trained model, fitted cost-linear fallback,
/// and the given fault plan.
fn chaos_server(config: ServeConfig) -> (DaceServer, dace_plan::Dataset) {
    silence_injected_panics();
    let (est, train) = common::quick_estimator(7);
    let registry = Arc::new(ModelRegistry::new(est));
    let fallback = Box::new(CostLinearFallback::fit(&train));
    (DaceServer::with_fallback(registry, config, fallback), train)
}

fn base_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        min_fill: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn certain_batch_panics_degrade_every_answer_and_open_the_breaker() {
    let config = ServeConfig {
        faults: FaultConfig {
            seed: 11,
            batch_panic_ppm: 1_000_000, // every forward panics
            ..FaultConfig::disabled()
        },
        ..base_config()
    };
    let (server, train) = chaos_server(config);
    for plan in train.plans.iter().take(40) {
        let pred = server.predict(&plan.tree).expect("degraded, not failed");
        assert!(pred.degraded, "model path is 100% dead: must degrade");
        assert!(pred.ms.is_finite() && pred.ms > 0.0);
        assert!(pred.stages.is_none(), "degraded answers skip staging");
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.completed, 40);
    assert_eq!(snap.degraded, 40, "every answer flagged and counted");
    assert!(snap.batch_panics > 0);
    assert!(
        snap.breaker_opened >= 1,
        "sustained failures must trip the breaker (snapshot: {snap})"
    );
    assert_eq!(server.breaker_state(), Some(BreakerState::Open));
    server.shutdown();
}

#[test]
fn breaker_closes_again_once_faults_stop() {
    let config = ServeConfig {
        breaker: BreakerConfig {
            open_cooldown: Duration::from_millis(2),
            min_samples: 4,
            probe_successes: 2,
            ..BreakerConfig::default()
        },
        faults: FaultConfig {
            seed: 12,
            batch_panic_ppm: 1_000_000,
            ..FaultConfig::disabled()
        },
        ..base_config()
    };
    let (server, train) = chaos_server(config);

    // Phase 1: trip it.
    for plan in train.plans.iter().take(20) {
        let pred = server.predict(&plan.tree).unwrap();
        assert!(pred.degraded);
    }
    assert_eq!(server.breaker_state(), Some(BreakerState::Open));

    // Phase 2: the fault clears; probes must re-close the breaker and
    // traffic must return to real model answers.
    server.fault_injector().set_enabled(false);
    let mut healthy = 0u32;
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(1));
        for plan in train.plans.iter().take(4) {
            let pred = server.predict(&plan.tree).unwrap();
            if !pred.degraded {
                healthy += 1;
            }
        }
        if server.breaker_state() == Some(BreakerState::Closed) && healthy > 0 {
            break;
        }
    }
    assert_eq!(
        server.breaker_state(),
        Some(BreakerState::Closed),
        "breaker must recover after the fault clears"
    );
    assert!(healthy > 0, "model answers must resume");
    let snap = server.metrics_snapshot();
    assert!(snap.breaker_opened >= 1 && snap.breaker_closed >= 1);
    server.shutdown();
}

#[test]
fn worker_kills_are_respawned_and_no_request_is_lost() {
    let config = ServeConfig {
        faults: FaultConfig {
            seed: 13,
            worker_kill_ppm: 200_000, // ~20% of drains kill the worker
            ..FaultConfig::disabled()
        },
        ..base_config()
    };
    let (server, train) = chaos_server(config);
    let mut answered = 0u32;
    for round in 0..10 {
        for plan in train.plans.iter().take(20) {
            let pred = server
                .predict_with(&plan.tree, None, None)
                .expect("kills must never lose a request");
            assert!(pred.ms.is_finite());
            answered += 1;
        }
        // Give the supervisor air between bursts.
        if round % 3 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    assert_eq!(answered, 200);
    let snap = server.metrics_snapshot();
    assert!(
        snap.worker_panics > 0,
        "20% kill rate over 200 requests must have fired (snapshot: {snap})"
    );
    assert!(snap.worker_restarts > 0, "supervisor must respawn workers");
    assert_eq!(snap.pool_exhausted, 0, "the pool must never die");
    assert_eq!(snap.completed, 200);
    server.shutdown();
}

#[test]
fn stalls_and_delays_slow_but_never_break_service() {
    let config = ServeConfig {
        faults: FaultConfig {
            seed: 14,
            stage_delay_ppm: 300_000,
            stage_delay: Duration::from_millis(1),
            queue_stall_ppm: 300_000,
            queue_stall: Duration::from_millis(1),
            ..FaultConfig::disabled()
        },
        ..base_config()
    };
    let (server, train) = chaos_server(config);
    for plan in train.plans.iter().take(60) {
        let pred = server.predict(&plan.tree).unwrap();
        assert!(!pred.degraded, "latency faults are not errors");
        assert!(pred.ms.is_finite());
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.completed, 60);
    assert_eq!(snap.degraded, 0);
    server.shutdown();
}

#[test]
fn hostile_plans_are_rejected_at_admission_not_served() {
    let (server, _train) = chaos_server(base_config());

    // NaN cost.
    let mut b = TreeBuilder::new();
    let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
    node.est_cost = f64::NAN;
    let root = b.leaf(node);
    let tree = b.finish(root);
    match server.predict(&tree) {
        Err(ServeError::InvalidPlan(PlanValidationError::NonFiniteCost { .. })) => {}
        other => panic!("NaN cost must be rejected as InvalidPlan, got {other:?}"),
    }

    // Infinite cardinality.
    let mut b = TreeBuilder::new();
    let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
    node.est_rows = f64::INFINITY;
    let root = b.leaf(node);
    let tree = b.finish(root);
    match server.predict(&tree) {
        Err(ServeError::InvalidPlan(PlanValidationError::NonFiniteRows { .. })) => {}
        other => panic!("Inf rows must be rejected as InvalidPlan, got {other:?}"),
    }

    // Absurdly deep chain.
    let mut b = TreeBuilder::new();
    let mut child = b.leaf(PlanNode::new(NodeType::SeqScan, OpPayload::Other));
    for _ in 0..40 {
        child = b.internal(
            PlanNode::new(NodeType::Materialize, OpPayload::Other),
            vec![child],
        );
    }
    let tree = b.finish(child);
    let shallow = ServeConfig {
        max_plan_depth: 16,
        ..base_config()
    };
    let (strict_server, _) = chaos_server(shallow);
    match strict_server.predict(&tree) {
        Err(ServeError::InvalidPlan(PlanValidationError::TooDeep { .. })) => {}
        other => panic!("over-deep plan must be rejected, got {other:?}"),
    }

    let snap = server.metrics_snapshot();
    assert_eq!(snap.invalid_plan, 2);
    assert_eq!(snap.submitted, 0, "rejected plans never enter the queue");
    server.shutdown();
    strict_server.shutdown();
}

#[test]
fn without_a_fallback_panics_fail_typed_not_crashed() {
    silence_injected_panics();
    let (est, train) = common::quick_estimator(9);
    let registry = Arc::new(ModelRegistry::new(est));
    let config = ServeConfig {
        faults: FaultConfig {
            seed: 15,
            batch_panic_ppm: 1_000_000,
            ..FaultConfig::disabled()
        },
        ..base_config()
    };
    let server = DaceServer::new(registry, config);
    for plan in train.plans.iter().take(10) {
        match server.predict(&plan.tree) {
            Err(ServeError::Internal) => {}
            other => panic!("expected typed Internal error, got {other:?}"),
        }
    }
    let snap = server.metrics_snapshot();
    assert!(snap.batch_panics > 0);
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.degraded, 0);
    assert_eq!(server.breaker_state(), None);
    server.shutdown();
}

#[test]
fn combined_fault_storm_stays_available() {
    let config = ServeConfig {
        faults: FaultConfig {
            seed: 16,
            worker_kill_ppm: 50_000,
            batch_panic_ppm: 50_000,
            stage_delay_ppm: 20_000,
            stage_delay: Duration::from_micros(500),
            queue_stall_ppm: 20_000,
            queue_stall: Duration::from_micros(500),
            ..FaultConfig::disabled()
        },
        ..base_config()
    };
    let (server, train) = chaos_server(config);
    let mut completed = 0u64;
    for plan in train.plans.iter().cycle().take(300) {
        if server.predict(&plan.tree).is_ok() {
            completed += 1;
        }
    }
    assert_eq!(completed, 300, "closed-loop chaos traffic is never dropped");
    let snap = server.metrics_snapshot();
    assert!(
        snap.availability() >= 0.99,
        "availability: {}",
        snap.availability()
    );
    assert_eq!(snap.pool_exhausted, 0);
    assert!(snap.degraded <= snap.completed);
    server.shutdown();
}
