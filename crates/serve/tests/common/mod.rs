//! Shared test support: a quickly trainable synthetic plan workload
//! (the same learnable shape `dace-core`'s tests use).

use dace_core::{DaceEstimator, TrainConfig, Trainer};
use dace_plan::{Dataset, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Synthetic learnable dataset: latency = f(node-type mix, est cost).
pub fn synthetic_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let plans = (0..n)
        .map(|_| {
            let mut b = TreeBuilder::new();
            let scan_cost = rng.gen_range(10.0..10_000.0f64);
            let scan_rows = scan_cost * rng.gen_range(5.0..15.0);
            let use_hash = rng.gen_bool(0.5);
            let scan = {
                let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                node.est_cost = scan_cost;
                node.est_rows = scan_rows;
                node.actual_ms = scan_cost * 0.004;
                node.actual_rows = scan_rows;
                b.leaf(node)
            };
            let scan2 = {
                let mut node = PlanNode::new(NodeType::IndexScan, OpPayload::Other);
                node.est_cost = scan_cost * 0.3;
                node.est_rows = scan_rows * 0.1;
                node.actual_ms = scan_cost * 0.01;
                node.actual_rows = scan_rows * 0.1;
                b.leaf(node)
            };
            let join_ty = if use_hash {
                NodeType::HashJoin
            } else {
                NodeType::NestedLoop
            };
            let mult = if use_hash { 0.002 } else { 0.02 };
            let root = {
                let mut node = PlanNode::new(join_ty, OpPayload::Other);
                node.est_cost = scan_cost * 2.0;
                node.est_rows = scan_rows;
                node.actual_ms = scan_cost * 2.0 * mult + scan_cost * 0.014;
                node.actual_rows = scan_rows;
                b.internal(node, vec![scan, scan2])
            };
            LabeledPlan {
                tree: b.finish(root),
                db_id: 0,
                machine: MachineId::M1,
            }
        })
        .collect();
    Dataset::from_plans(plans)
}

/// A small pre-trained estimator (deterministic).
pub fn quick_estimator(seed: u64) -> (DaceEstimator, Dataset) {
    let train = synthetic_dataset(80, seed);
    let est = Trainer::new(TrainConfig {
        epochs: 4,
        ..Default::default()
    })
    .fit(&train)
    .unwrap();
    (est, train)
}
