//! Hardening tests for the model-reload path: a corrupt or torn checkpoint
//! on disk must surface as a typed [`ReloadError`] and leave the registry
//! serving its last good version, bit-for-bit.

mod common;

use std::sync::Arc;

use dace_core::{save_checkpoint, CheckpointError};
use dace_serve::{ModelRegistry, ReloadError};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dace-hardening-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn clean_checkpoint_reload_swaps_the_base() {
    let (est, train) = common::quick_estimator(21);
    let (next, _) = common::quick_estimator(22);
    let dir = temp_dir("clean");
    let path = dir.join("model.ckpt");
    save_checkpoint(&path, &next).unwrap();

    let registry = ModelRegistry::new(est);
    let v0 = registry.base().version;
    let v1 = registry
        .swap_base_from_checkpoint(&path)
        .expect("clean checkpoint reloads");
    assert!(v1 > v0);
    let expected = next.predict_ms(&train.plans[0].tree);
    let got = registry.base().estimator.predict_ms(&train.plans[0].tree);
    assert_eq!(expected.to_bits(), got.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_is_rejected_and_last_good_version_keeps_serving() {
    let (est, train) = common::quick_estimator(23);
    let probe = &train.plans[0].tree;
    let baseline = est.predict_ms(probe);

    let dir = temp_dir("corrupt");
    let path = dir.join("model.ckpt");
    save_checkpoint(&path, &est).unwrap();

    // Flip one payload bit — the torn-write/bit-rot stand-in.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let registry = Arc::new(ModelRegistry::new(est));
    let v_before = registry.base().version;
    match registry.swap_base_from_checkpoint(&path) {
        Err(ReloadError::Checkpoint(CheckpointError::ChecksumMismatch { .. })) => {}
        other => panic!("expected a checksum rejection, got {other:?}"),
    }
    // The registry is untouched: same version, bit-identical predictions.
    assert_eq!(registry.base().version, v_before);
    assert_eq!(
        registry.base().estimator.predict_ms(probe).to_bits(),
        baseline.to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_checkpoint_is_rejected_typed() {
    let (est, _) = common::quick_estimator(24);
    let dir = temp_dir("torn");
    let path = dir.join("model.ckpt");
    save_checkpoint(&path, &est).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

    let registry = ModelRegistry::new(est);
    assert!(matches!(
        registry.swap_base_from_checkpoint(&path),
        Err(ReloadError::Checkpoint(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_checkpoint_file_is_a_typed_io_error() {
    let (est, _) = common::quick_estimator(25);
    let registry = ModelRegistry::new(est);
    let path = std::env::temp_dir().join(format!("dace-no-ckpt-{}", std::process::id()));
    match registry.swap_base_from_checkpoint(&path) {
        Err(ReloadError::Checkpoint(CheckpointError::Io(_))) => {}
        other => panic!("expected Io, got {other:?}"),
    }
}
