//! Health-plane suite: causal trace ids under chaos, the lifecycle
//! journal's view of a live server, and the introspection endpoint's HTTP
//! round-trip — all against real worker threads.

mod common;

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use dace_serve::{
    http_get, silence_injected_panics, CostLinearFallback, DaceServer, FaultConfig, HealthConfig,
    LifecycleEvent, ModelRegistry, ServeConfig, SloConfig,
};

fn base_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        min_fill: 1,
        ..ServeConfig::default()
    }
}

fn loopback() -> std::net::SocketAddr {
    "127.0.0.1:0".parse().expect("loopback literal parses")
}

/// Every answered request carries a unique non-zero trace id, even while
/// injected worker kills force the supervisor to respawn workers under the
/// traffic — respawns must not duplicate, zero, or drop trace stamps.
#[test]
fn trace_ids_survive_worker_respawns_without_duplicates() {
    silence_injected_panics();
    let (est, train) = common::quick_estimator(21);
    let registry = Arc::new(ModelRegistry::new(est));
    let fallback = Box::new(CostLinearFallback::fit(&train));
    let config = ServeConfig {
        faults: FaultConfig {
            seed: 0xBEEF,
            worker_kill_ppm: 50_000, // 5% of drains kill their worker
            ..FaultConfig::disabled()
        },
        ..base_config()
    };
    let server = DaceServer::with_fallback(registry, config, fallback);

    let clients = 8usize;
    let requests = 100usize;
    let traces: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = &server;
                let train = &train;
                s.spawn(move || {
                    let mut got = Vec::with_capacity(requests);
                    for r in 0..requests {
                        let tree = &train.plans[(c * 13 + r) % train.plans.len()].tree;
                        if let Ok(pred) = server.predict(tree) {
                            got.push(pred.trace);
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    assert!(
        traces.len() as u64 >= (clients * requests) as u64 * 9 / 10,
        "kills answered too few requests: {}",
        traces.len()
    );
    assert!(traces.iter().all(|&t| t != 0), "a response lost its trace");
    let unique: HashSet<u64> = traces.iter().copied().collect();
    assert_eq!(
        unique.len(),
        traces.len(),
        "duplicate trace ids across responses"
    );

    // The supervisor actually respawned under this traffic, and said so in
    // the journal. Let any respawn in flight at end-of-traffic land first
    // (poll cadence 1 ms, backoff cap 100 ms).
    std::thread::sleep(Duration::from_millis(250));
    let snap = server.metrics_snapshot();
    assert!(snap.worker_restarts > 0, "fault plan never killed a worker");
    let respawns = server
        .health()
        .journal()
        .records()
        .iter()
        .filter(|r| matches!(r.event, LifecycleEvent::WorkerRespawned { .. }))
        .count() as u64;
    assert_eq!(
        respawns, snap.worker_restarts,
        "journal and counter disagree on respawns"
    );
}

/// The five introspection endpoints answer over real HTTP on a fresh
/// healthy server: `/health` says ok, `/metrics` carries HELP'd serve
/// series, `/events` is a JSON array holding the `ServerStarted` head
/// marker, `/version` reports the registry, and unknown paths 404.
#[test]
fn introspect_endpoints_round_trip_over_http() {
    let (est, train) = common::quick_estimator(22);
    let registry = Arc::new(ModelRegistry::new(est));
    let config = ServeConfig {
        introspect_addr: Some(loopback()),
        ..base_config()
    };
    let server = DaceServer::new(registry, config);
    let addr = server.introspect_addr().expect("port 0 bind succeeds");

    for r in 0..16 {
        let tree = &train.plans[r % train.plans.len()].tree;
        server.predict(tree).expect("healthy request");
    }

    let (code, body) = http_get(addr, "/health").expect("GET /health");
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"qerr\""), "{body}");
    assert!(body.contains("\"deadline\""), "{body}");

    let (code, body) = http_get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    assert!(body.contains("# HELP serve_submitted_total"), "{body}");
    assert!(body.contains("# TYPE serve_submitted_total counter"));
    assert!(body.contains("obs_recorder_dropped"));

    let (code, body) = http_get(addr, "/events?n=10").expect("GET /events");
    assert_eq!(code, 200);
    assert!(body.starts_with('['), "{body}");
    assert!(body.contains("ServerStarted"), "{body}");

    let (code, body) = http_get(addr, "/version").expect("GET /version");
    assert_eq!(code, 200);
    assert!(body.contains("\"base_version\""), "{body}");
    assert!(body.contains("\"versions_published\""), "{body}");

    let (code, _) = http_get(addr, "/nope").expect("GET /nope");
    assert_eq!(code, 404);

    server.shutdown();
}

/// An injected breaker-open window flips `/health` from ok to degraded,
/// journals the breaker transitions, and auto-dumps a diagnostic bundle
/// into the configured directory.
#[test]
fn breaker_open_flips_health_endpoint_to_degraded_and_dumps_a_bundle() {
    silence_injected_panics();
    let (est, train) = common::quick_estimator(23);
    let registry = Arc::new(ModelRegistry::new(est));
    let fallback = Box::new(CostLinearFallback::fit(&train));
    let dir = std::env::temp_dir().join(format!("dace-health-test-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = ServeConfig {
        introspect_addr: Some(loopback()),
        faults: FaultConfig {
            seed: 5,
            batch_panic_ppm: 1_000_000, // every forward panics
            ..FaultConfig::disabled()
        },
        ..base_config()
    };
    let health = HealthConfig {
        bundle_dir: Some(dir.clone()),
        ..HealthConfig::default()
    };
    let server = DaceServer::with_health(registry, config, Some(fallback), health);
    let addr = server.introspect_addr().expect("port 0 bind succeeds");

    let (code, body) = http_get(addr, "/health").expect("GET /health (fresh)");
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    for r in 0..64 {
        let tree = &train.plans[r % train.plans.len()].tree;
        let pred = server.predict(tree).expect("fallback answers");
        assert!(pred.degraded || pred.ms.is_finite());
    }

    let (code, body) = http_get(addr, "/health").expect("GET /health (open)");
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"degraded\""), "{body}");

    let records = server.health().journal().records();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, LifecycleEvent::BreakerOpened { .. })),
        "breaker opening must be journaled"
    );
    assert!(server.health().bundles_dumped() >= 1);
    let dumped = records.iter().any(
        |r| matches!(&r.event, LifecycleEvent::BundleDumped { cause, .. } if cause == "breaker_open"),
    );
    assert!(dumped, "bundle dump must be journaled with its cause");
    // The bundle actually landed: a journal tail and a chrome trace.
    let bundle = std::fs::read_dir(&dir)
        .expect("bundle dir exists")
        .next()
        .expect("one bundle written")
        .expect("readable entry");
    assert!(bundle.path().join("journal_tail.jsonl").exists());
    assert!(bundle.path().join("flight_recorder.json").exists());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A durable journal survives the server: records written by one server
/// are read back (and continued) by the next one on the same path — the
/// restart story for post-mortems.
#[test]
fn durable_journal_reconstructs_across_server_restarts() {
    let (est, train) = common::quick_estimator(24);
    let dir = std::env::temp_dir().join(format!("dace-health-journal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let path = dir.join("journal.jsonl");
    let health = HealthConfig {
        journal_path: Some(path.clone()),
        slo: SloConfig::default(),
        ..HealthConfig::default()
    };

    let registry = Arc::new(ModelRegistry::new(est.clone()));
    let server = DaceServer::with_health(registry, base_config(), None, health.clone());
    server.predict(&train.plans[0].tree).expect("request");
    let first_len = server.health().journal().len();
    assert!(first_len >= 1, "ServerStarted must be journaled");
    server.shutdown();

    // Second server, same path: the sequence continues, nothing is lost.
    let registry = Arc::new(ModelRegistry::new(est));
    let server = DaceServer::with_health(registry, base_config(), None, health);
    let records = server.health().journal().records();
    assert!(records.len() as u64 > first_len);
    let started = records
        .iter()
        .filter(|r| matches!(r.event, LifecycleEvent::ServerStarted { .. }))
        .count();
    assert_eq!(started, 2, "both boots must appear in one journal");
    let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "journal sequence must be gapless across restarts"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
