//! The hot-swap safety contract: N client threads predicting while adapters
//! are installed/swapped mid-flight must never observe a torn model, and
//! every response must record exactly which version served it.
//!
//! Strategy: build adapter variants whose predictions are well separated in
//! ln space (asserted, so the check cannot pass vacuously), precompute every
//! (version, probe) → expected prediction before any traffic, then audit
//! each response: its stamped version must map to its prediction within a
//! tolerance far below the separation. A model with weights from two
//! versions mixed would land between variants and fail the audit.

mod common;

use std::sync::Arc;
use std::time::Duration;

use dace_core::DaceEstimator;
use dace_plan::PlanTree;
use dace_serve::{DaceServer, ModelRegistry, ServeConfig};

/// Packed-batch vs single-plan forwards differ only by summation order
/// (documented at ~1e-4 in ln space); 1e-3 leaves an order of magnitude
/// of headroom while staying far below `MIN_SEPARATION`.
const TOLERANCE_LN: f64 = 1e-3;
/// Variants must disagree by at least this much on every probe.
const MIN_SEPARATION_LN: f64 = 5e-2;

/// Fine-tune a copy of `base` against latencies scaled by `factor` — the
/// across-machine shift of Sec. IV-D, which LoRA absorbs into ΔW.
fn scaled_variant(base: &DaceEstimator, factor: f64, seed: u64) -> DaceEstimator {
    let mut shifted = common::synthetic_dataset(150, seed);
    for p in &mut shifted.plans {
        for id in p.tree.ids().collect::<Vec<_>>() {
            p.tree.node_mut(id).actual_ms *= factor;
        }
    }
    let mut est = base.clone();
    est.fine_tune_lora(&shifted, 25, 2e-3).unwrap();
    est
}

fn expected_ln(est: &DaceEstimator, probes: &[PlanTree]) -> Vec<f64> {
    probes.iter().map(|t| est.predict_ms(t).ln()).collect()
}

fn assert_separated(tables: &[Vec<f64>], probes: usize) {
    for a in 0..tables.len() {
        for b in (a + 1)..tables.len() {
            let pairs = tables[a][..probes].iter().zip(&tables[b][..probes]);
            for (p, (va, vb)) in pairs.enumerate() {
                let gap = (va - vb).abs();
                assert!(
                    gap >= MIN_SEPARATION_LN,
                    "variants {a} and {b} too close on probe {p} (gap {gap:.4} ln): \
                     the torn-model audit would be vacuous"
                );
            }
        }
    }
}

#[test]
fn concurrent_adapter_swap_never_serves_torn_model() {
    let (base, _) = common::quick_estimator(11);
    let variant_a = scaled_variant(&base, 6.0, 12);
    let variant_b = scaled_variant(&base, 36.0, 13);
    let adapter_a = variant_a.extract_adapter();
    let adapter_b = variant_b.extract_adapter();

    let probes: Vec<PlanTree> = common::synthetic_dataset(4, 99)
        .plans
        .into_iter()
        .map(|p| p.tree)
        .collect();

    // Expected predictions per variant, exactly as the registry materializes
    // them (current base + ΔW at install time).
    let exp_base = expected_ln(&base, &probes);
    let exp_a = expected_ln(&base.with_adapter(&adapter_a).unwrap(), &probes);
    let exp_b = expected_ln(&base.with_adapter(&adapter_b).unwrap(), &probes);
    assert_separated(
        &[exp_base.clone(), exp_a.clone(), exp_b.clone()],
        probes.len(),
    );

    let registry = Arc::new(ModelRegistry::new(base));
    // Version ids are a global monotone counter: base = 0, installs get
    // 1, 2, 3, … in install order. The swapper alternates the two adapters
    // under one name, so odd versions are A and even versions are B.
    let first = registry.install_adapter("tenant", &adapter_a).unwrap();
    assert_eq!(first, 1);
    let expected_for_version = move |v: u64| -> &'static str {
        match v {
            0 => "base",
            v if v % 2 == 1 => "a",
            _ => "b",
        }
    };

    let server = DaceServer::new(
        Arc::clone(&registry),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );

    const CLIENTS: usize = 8;
    const REQS: usize = 60;
    const SWAPS: u64 = 6;

    std::thread::scope(|s| {
        // The swapper: alternate installs under live traffic.
        s.spawn(|| {
            for i in 0..SWAPS {
                std::thread::sleep(Duration::from_millis(2));
                let adapter = if i % 2 == 0 { &adapter_b } else { &adapter_a };
                registry.install_adapter("tenant", adapter).unwrap();
            }
        });

        for c in 0..CLIENTS {
            let server = &server;
            let probes = &probes;
            let (exp_base, exp_a, exp_b) = (&exp_base, &exp_a, &exp_b);
            s.spawn(move || {
                let mut last_tenant_version = 0u64;
                for r in 0..REQS {
                    let p = (c + r) % probes.len();
                    let use_adapter = (c + r) % 3 != 0;
                    let name = use_adapter.then_some("tenant");
                    let pred = server
                        .predict_with(&probes[p], name, None)
                        .expect("request failed");
                    let got = pred.ms.ln();
                    let (want, label) = if use_adapter {
                        assert_eq!(pred.adapter.as_deref(), Some("tenant"));
                        assert!(pred.version >= 1, "adapter served by base version");
                        // A client's requests are sequential and `latest` is
                        // monotone, so observed versions never go backwards.
                        assert!(
                            pred.version >= last_tenant_version,
                            "version went backwards: {} after {}",
                            pred.version,
                            last_tenant_version
                        );
                        last_tenant_version = pred.version;
                        match expected_for_version(pred.version) {
                            "a" => (exp_a[p], "a"),
                            _ => (exp_b[p], "b"),
                        }
                    } else {
                        assert_eq!(pred.adapter, None);
                        assert_eq!(pred.version, 0, "base request served by adapter");
                        (exp_base[p], "base")
                    };
                    assert!(
                        (got - want).abs() < TOLERANCE_LN,
                        "client {c} req {r}: version {} claims variant {label} but \
                         prediction {got:.6} != expected {want:.6} (torn model?)",
                        pred.version
                    );
                }
            });
        }
    });

    let snap = server.metrics_snapshot();
    assert_eq!(snap.completed, (CLIENTS * REQS) as u64);
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.expired, 0);
    assert_eq!(registry.versions_published(), 1 + SWAPS + 1);
    server.shutdown();
}

#[test]
fn base_swap_under_load_is_atomic() {
    let (base, _) = common::quick_estimator(21);
    let replacement = scaled_variant(&base, 10.0, 22);

    let probes: Vec<PlanTree> = common::synthetic_dataset(3, 98)
        .plans
        .into_iter()
        .map(|p| p.tree)
        .collect();
    let exp_old = expected_ln(&base, &probes);
    let exp_new = expected_ln(&replacement, &probes);
    assert_separated(&[exp_old.clone(), exp_new.clone()], probes.len());

    let registry = Arc::new(ModelRegistry::new(base));
    // A longer batching window keeps the 6-client closed loop slow enough
    // that the 3 ms-delayed swap reliably lands mid-traffic.
    let server = DaceServer::new(
        Arc::clone(&registry),
        ServeConfig {
            max_wait: Duration::from_micros(500),
            ..ServeConfig::default()
        },
    );

    const CLIENTS: usize = 6;
    const REQS: usize = 50;
    std::thread::scope(|s| {
        let swapper = s.spawn(|| {
            std::thread::sleep(Duration::from_millis(3));
            registry.swap_base(replacement.clone()).unwrap()
        });
        let mut clients = Vec::new();
        for c in 0..CLIENTS {
            let server = &server;
            let probes = &probes;
            let (exp_old, exp_new) = (&exp_old, &exp_new);
            clients.push(s.spawn(move || {
                let mut saw = [false; 2];
                for r in 0..REQS {
                    let p = (c + r) % probes.len();
                    let pred = server.predict(&probes[p]).expect("request failed");
                    let got = pred.ms.ln();
                    let want = if pred.version == 0 {
                        saw[0] = true;
                        exp_old[p]
                    } else {
                        saw[1] = true;
                        exp_new[p]
                    };
                    assert!(
                        (got - want).abs() < TOLERANCE_LN,
                        "client {c} req {r}: version {} prediction {got:.6} != \
                         expected {want:.6} (torn base swap?)",
                        pred.version
                    );
                }
                saw
            }));
        }
        let new_version = swapper.join().unwrap();
        assert_eq!(new_version, 1);
        // The swap landed 3 ms into ~50 sequential predictions per client,
        // so at least one client must have straddled it and seen both sides.
        let seen = clients
            .into_iter()
            .map(|c| c.join().unwrap())
            .fold([false; 2], |acc, s| [acc[0] | s[0], acc[1] | s[1]]);
        assert!(seen[1], "no client ever observed the swapped base");
    });
    server.shutdown();
}
