//! Scheduler behavior: correctness vs the offline batch path, admission
//! control (load shedding, deadlines), micro-batching, and the
//! featurization cache.

mod common;

use std::sync::Arc;
use std::time::Duration;

use dace_plan::PlanTree;
use dace_serve::{DaceServer, ModelRegistry, ServeConfig, ServeError};

fn probe_trees(n: usize, seed: u64) -> Vec<PlanTree> {
    common::synthetic_dataset(n, seed)
        .plans
        .into_iter()
        .map(|p| p.tree)
        .collect()
}

#[test]
fn served_predictions_match_offline_batch_path() {
    let (est, _) = common::quick_estimator(31);
    let trees = probe_trees(40, 32);
    let refs: Vec<&PlanTree> = trees.iter().collect();
    let offline = est.predict_batch_ms(&refs);

    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), ServeConfig::default());
    // Submit everything up front, then shut down: workers must drain the
    // backlog before exiting, so every handle still resolves.
    let handles: Vec<_> = trees
        .iter()
        .map(|t| server.submit(t, None, None).unwrap())
        .collect();
    let snap_before = server.metrics_snapshot();
    assert_eq!(snap_before.submitted, 40);
    server.shutdown();

    for (h, want) in handles.into_iter().zip(offline) {
        let pred = h.wait().expect("drained request failed");
        assert!(
            (pred.ms.ln() - want.ln()).abs() < 1e-3,
            "served {} vs offline {want}",
            pred.ms
        );
        assert_eq!(pred.version, 0);
        assert_eq!(pred.adapter, None);
        assert!(pred.batch_size >= 1);
    }
}

#[test]
fn full_queue_sheds_and_teardown_resolves_stranded_handles() {
    let (est, _) = common::quick_estimator(41);
    let trees = probe_trees(1, 42);
    // No workers: nothing drains, so the queue's capacity is the whole
    // admission budget.
    let server = DaceServer::new(
        Arc::new(ModelRegistry::new(est)),
        ServeConfig {
            workers: 0,
            queue_depth: 2,
            ..ServeConfig::default()
        },
    );
    let h1 = server.submit(&trees[0], None, None).unwrap();
    let h2 = server.submit(&trees[0], None, None).unwrap();
    let shed = server.submit(&trees[0], None, None);
    assert_eq!(shed.unwrap_err(), ServeError::Overloaded);

    let snap = server.metrics_snapshot();
    assert_eq!(snap.submitted, 2);
    assert_eq!(snap.shed, 1);
    assert!(!snap.is_empty());

    // Tearing the server down with jobs still queued must not hang the
    // clients: stranded handles resolve to ShuttingDown.
    drop(server);
    assert_eq!(h1.wait().unwrap_err(), ServeError::ShuttingDown);
    assert_eq!(h2.wait().unwrap_err(), ServeError::ShuttingDown);
}

#[test]
fn expired_deadlines_are_dropped_before_any_work() {
    let (est, _) = common::quick_estimator(51);
    let trees = probe_trees(1, 52);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), ServeConfig::default());

    // A zero deadline has always passed by the time a worker drains the job.
    let err = server
        .predict_with(&trees[0], None, Some(Duration::ZERO))
        .unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded);

    // The config-level default deadline takes the same path.
    let server2 = DaceServer::new(
        server.registry().clone(),
        ServeConfig {
            default_deadline: Some(Duration::ZERO),
            ..ServeConfig::default()
        },
    );
    assert_eq!(
        server2.predict(&trees[0]).unwrap_err(),
        ServeError::DeadlineExceeded
    );
    let snap = server2.metrics_snapshot();
    assert_eq!(snap.expired, 1);
    assert_eq!(snap.completed, 0);
}

#[test]
fn unknown_adapter_is_a_per_request_error() {
    let (est, _) = common::quick_estimator(61);
    let trees = probe_trees(1, 62);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), ServeConfig::default());

    let err = server
        .predict_with(&trees[0], Some("nope"), None)
        .unwrap_err();
    assert_eq!(err, ServeError::UnknownAdapter("nope".to_string()));
    // One bad request must not poison the server for good ones.
    assert!(server.predict(&trees[0]).is_ok());
    assert_eq!(server.metrics_snapshot().unknown_adapter, 1);
}

#[test]
fn backlog_is_micro_batched() {
    let (est, _) = common::quick_estimator(71);
    let trees = probe_trees(16, 72);
    let server = DaceServer::new(
        Arc::new(ModelRegistry::new(est)),
        ServeConfig {
            workers: 1,
            max_batch: 16,
            // A generous window so all 16 pre-queued requests ride one batch
            // even on a slow machine.
            max_wait: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );
    // submit() is non-blocking, so the whole backlog is queued while the
    // single worker is still inside its first batch window.
    let handles: Vec<_> = trees
        .iter()
        .map(|t| server.submit(t, None, None).unwrap())
        .collect();
    let preds: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    let max_batch = preds.iter().map(|p| p.batch_size).max().unwrap();
    assert!(
        max_batch >= 2,
        "16 queued requests never shared a batch (max batch size {max_batch})"
    );
    let snap = server.metrics_snapshot();
    assert_eq!(snap.completed, 16);
    assert!(
        snap.batches < 16,
        "one batch per request — micro-batching never engaged"
    );
    assert!(snap.batch_size.max >= 2);
}

#[test]
fn repeated_plans_hit_the_featurization_cache() {
    let (est, _) = common::quick_estimator(81);
    let trees = probe_trees(2, 82);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), ServeConfig::default());

    let first = server.predict(&trees[0]).unwrap();
    assert!(!first.cache_hit, "fresh plan cannot hit the cache");
    let again = server.predict(&trees[0]).unwrap();
    assert!(again.cache_hit, "repeated plan missed the cache");
    assert!(
        (first.ms - again.ms).abs() < 1e-12,
        "cached features changed the prediction: {} vs {}",
        first.ms,
        again.ms
    );
    let other = server.predict(&trees[1]).unwrap();
    assert!(
        !other.cache_hit,
        "structurally different plan hit the cache"
    );

    let snap = server.metrics_snapshot();
    assert_eq!(snap.cache_hits, 1);
    assert_eq!(snap.cache_misses, 2);
    assert!((snap.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
}

#[test]
fn zero_capacity_cache_disables_caching_but_stays_correct() {
    let (est, _) = common::quick_estimator(91);
    let trees = probe_trees(1, 92);
    let offline = est.predict_ms(&trees[0]);
    let server = DaceServer::new(
        Arc::new(ModelRegistry::new(est)),
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    for _ in 0..3 {
        let pred = server.predict(&trees[0]).unwrap();
        assert!(!pred.cache_hit);
        assert!((pred.ms.ln() - offline.ln()).abs() < 1e-3);
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.cache_hits, 0);
    assert_eq!(snap.cache_misses, 3);
}

#[test]
fn latency_histograms_cover_every_completed_request() {
    let (est, _) = common::quick_estimator(95);
    let trees = probe_trees(8, 96);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), ServeConfig::default());
    for t in &trees {
        server.predict(t).unwrap();
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.completed, 8);
    assert_eq!(snap.e2e_us.count, 8);
    assert_eq!(snap.queue_wait_us.count, 8);
    assert_eq!(snap.batch_size.count, snap.batches);
    assert!(snap.e2e_us.p99 >= snap.e2e_us.p50);
    assert!(snap.e2e_us.max > 0, "end-to-end latency recorded as zero");
    assert!(snap.forward_us.count > 0 && snap.featurize_us.count > 0);
}

#[test]
fn stage_breakdown_accompanies_predictions_when_enabled() {
    let (est, _) = common::quick_estimator(101);
    let trees = probe_trees(6, 102);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), ServeConfig::default());
    for (i, t) in trees.iter().enumerate() {
        let pred = server.predict(t).unwrap();
        let stages = pred.stages.expect("stage timing defaults to on");
        // Cache lookup is part of the featurize window, split out; both are
        // bounded by the end-to-end numbers the histograms see.
        assert!(
            stages.cache_lookup_us < 1_000_000,
            "probe took {i}: {stages:?}"
        );
        let total = stages.queue_wait_us
            + stages.cache_lookup_us
            + stages.featurize_us
            + stages.attention_us
            + stages.mlp_us;
        assert!(total < 10_000_000, "implausible stage total: {stages:?}");
    }
    let snap = server.metrics_snapshot();
    assert!(
        snap.cache_lookup_us.count > 0,
        "cache-probe histogram empty"
    );
    assert!(snap.attention_us.count > 0 && snap.mlp_us.count > 0);
    // The forward split is measured inside the forward window.
    assert!(snap.attention_us.max + snap.mlp_us.max <= snap.forward_us.max.max(1) * 2);
}

#[test]
fn stage_timing_off_suppresses_breakdown_and_histograms() {
    let (est, _) = common::quick_estimator(103);
    let trees = probe_trees(4, 104);
    let server = DaceServer::new(
        Arc::new(ModelRegistry::new(est)),
        ServeConfig {
            stage_timing: false,
            ..ServeConfig::default()
        },
    );
    for t in &trees {
        let pred = server.predict(t).unwrap();
        assert_eq!(pred.stages, None);
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.cache_lookup_us.count, 0);
    assert_eq!(snap.attention_us.count, 0);
    assert_eq!(snap.mlp_us.count, 0);
    assert!(
        snap.forward_us.count > 0,
        "aggregate forward timer still runs"
    );
}

#[test]
fn live_server_registry_exports_prometheus_and_json() {
    let (est, _) = common::quick_estimator(105);
    let trees = probe_trees(5, 106);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), ServeConfig::default());
    for t in &trees {
        server.predict(t).unwrap();
    }
    let text = server.metrics_registry().prometheus_text();
    let parsed = dace_obs::parse_prometheus_text(&text);
    assert_eq!(parsed["serve_completed_total"], 5.0);
    assert_eq!(parsed["serve_submitted_total"], 5.0);
    assert!(parsed["serve_e2e_us_count"] >= 5.0);
    assert!(parsed.contains_key("serve_e2e_us{quantile=\"0.99\"}"));
    // JSON export carries the same snapshot.
    let json = server.metrics_registry().json();
    let snap: dace_obs::RegistrySnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap.counters["serve_completed_total"], 5);
    assert_eq!(snap.histograms["serve_e2e_us"].count, 5);
}
