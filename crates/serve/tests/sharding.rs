//! Sharded-scheduler suite: affinity routing, bounded work-stealing,
//! deadline-clamped batch waits, the quantized fast tier, and the shard /
//! tier observability surface.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use dace_core::save_checkpoint;
use dace_serve::{
    silence_injected_panics, DaceServer, FaultConfig, ModelRegistry, ServeConfig, Tier,
};

fn sharded_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        workers: shards,
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        min_fill: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn sharded_server_answers_everything_and_spreads_load() {
    let (est, train) = common::quick_estimator(21);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), sharded_config(4));
    let handles: Vec<_> = train
        .plans
        .iter()
        .map(|p| server.submit(&p.tree, None, None).expect("admitted"))
        .collect();
    let n = handles.len() as u64;
    for h in handles {
        let pred = h.wait().expect("answered");
        assert!(pred.ms.is_finite() && pred.ms > 0.0);
        assert_eq!(pred.tier, Tier::Full);
    }
    let snaps = server.shard_snapshot();
    assert_eq!(snaps.len(), 4);
    assert_eq!(snaps.iter().map(|s| s.completed).sum::<u64>(), n);
    assert!(snaps.iter().all(|s| s.queue_depth == 0), "queues drained");
    // 80 distinct plans through an FNV route: several shards must see work.
    let busy = snaps.iter().filter(|s| s.completed > 0).count();
    assert!(
        busy >= 2,
        "affinity routing degenerated to one shard: {snaps:?}"
    );
    server.shutdown();
}

#[test]
fn identical_plans_share_a_shard_and_its_cache() {
    let (est, train) = common::quick_estimator(22);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), sharded_config(4));
    let hot = &train.plans[0].tree;
    for _ in 0..24 {
        server.predict(hot).expect("answered");
    }
    let snaps = server.shard_snapshot();
    // Strict affinity with no pressure: exactly one shard did all the work
    // and holds the single cached featurization.
    let busy: Vec<_> = snaps.iter().filter(|s| s.completed > 0).collect();
    assert_eq!(
        busy.len(),
        1,
        "same plan must route to one shard: {snaps:?}"
    );
    assert_eq!(busy[0].completed, 24);
    assert_eq!(server.cache_len(), 1);
    let snap = server.metrics_snapshot();
    assert!(snap.cache_hits >= 20, "repeats must hit the shard cache");
    server.shutdown();
}

#[test]
fn hot_shard_backlog_is_stolen_without_loss_or_duplication() {
    silence_injected_panics();
    let (est, train) = common::quick_estimator(23);
    let config = ServeConfig {
        steal_threshold: 1,
        steal_max: 4,
        max_batch: 1,
        queue_depth: 4096,
        // Every forward sleeps 1 ms: the hot shard cannot keep up alone,
        // so its backlog is only drained in time with thieves helping.
        faults: FaultConfig {
            seed: 5,
            stage_delay_ppm: 1_000_000,
            stage_delay: Duration::from_millis(1),
            ..FaultConfig::disabled()
        },
        ..sharded_config(4)
    };
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), config);
    let hot = &train.plans[0].tree;
    const N: usize = 160;
    let handles: Vec<_> = (0..N)
        .map(|_| server.submit(hot, None, None).expect("admitted"))
        .collect();
    let mut answered = 0usize;
    for h in handles {
        let pred = h.wait().expect("every stolen or local job is answered");
        assert!(pred.ms.is_finite() && pred.ms > 0.0);
        answered += 1;
    }
    assert_eq!(answered, N, "zero lost");
    let snaps = server.shard_snapshot();
    assert_eq!(
        snaps.iter().map(|s| s.completed).sum::<u64>(),
        N as u64,
        "zero duplicated: completions equal submissions exactly ({snaps:?})"
    );
    let stolen: u64 = snaps.iter().map(|s| s.stolen).sum();
    assert!(
        stolen > 0,
        "idle shards must have stolen from the hot one: {snaps:?}"
    );
    server.shutdown();
}

/// The latent `min_fill` bug this PR fixes: the batch-wait window used a
/// global clock while deadlines are per-entry. A lone near-deadline request
/// on an idle server must dispatch before its deadline, not sit out
/// `max_wait` waiting for a fill that never comes.
#[test]
fn near_deadline_requests_bypass_batch_wait() {
    let (est, train) = common::quick_estimator(24);
    let config = ServeConfig {
        shards: 1,
        workers: 1,
        // A pathological batching policy: wait up to 400 ms for 64 requests.
        max_batch: 64,
        min_fill: 64,
        max_wait: Duration::from_millis(400),
        ..ServeConfig::default()
    };
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), config);
    let deadline = Duration::from_millis(50);
    for plan in train.plans.iter().take(5) {
        let started = Instant::now();
        let pred = server
            .predict_with(&plan.tree, None, Some(deadline))
            .expect("batch-wait alone must never expire a request");
        let elapsed = started.elapsed();
        // The batcher dispatches at deadline minus a slack-proportional
        // margin (~12 ms here); allow scheduling jitter on a loaded
        // machine. The unclamped bug this pins sat out the full 400 ms
        // `max_wait`, so any bound far below that catches the regression.
        assert!(
            elapsed < deadline + Duration::from_millis(25),
            "answered long after the deadline ({elapsed:?}): window not clamped"
        );
        assert!(pred.ms.is_finite() && pred.ms > 0.0);
    }
    assert_eq!(server.metrics_snapshot().expired, 0);
    server.shutdown();
}

#[test]
fn tight_deadlines_route_to_the_quantized_tier_within_qerror_bound() {
    let (est, train) = common::quick_estimator(25);
    let config = ServeConfig {
        fast_tier_deadline: Some(Duration::from_millis(50)),
        ..sharded_config(2)
    };
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), config);
    for plan in train.plans.iter().take(16) {
        let full = server.predict(&plan.tree).expect("full tier");
        let fast = server
            .predict_with(&plan.tree, None, Some(Duration::from_millis(40)))
            .expect("fast tier");
        assert_eq!(full.tier, Tier::Full);
        assert_eq!(fast.tier, Tier::Quantized);
        let q = (full.ms / fast.ms).max(fast.ms / full.ms);
        assert!(
            q < 1.25,
            "tiers diverged: full {} vs quantized {} (q={q})",
            full.ms,
            fast.ms
        );
    }
    // A deadline above the fast-tier threshold stays on full precision.
    let slow = server
        .predict_with(&train.plans[0].tree, None, Some(Duration::from_millis(200)))
        .unwrap();
    assert_eq!(slow.tier, Tier::Full);
    let report = server.health().health_report(None);
    assert!(report.tier_full >= 17 && report.tier_quantized >= 16);
    server.shutdown();
}

/// Every promotion path funnels through `ModelVersion::new`, so the int8
/// twin is rebuilt on every swap — including the checkpoint-reload path the
/// adaptive loop promotes through. The fast tier must answer from the new
/// weights immediately.
#[test]
fn every_swap_rebuilds_the_quantized_twin() {
    let (est_a, train) = common::quick_estimator(26);
    let (est_b, _) = common::quick_estimator(99);
    let registry = Arc::new(ModelRegistry::new(est_a));
    let config = ServeConfig {
        fast_tier_deadline: Some(Duration::from_millis(50)),
        ..sharded_config(2)
    };
    let server = DaceServer::new(Arc::clone(&registry), config);
    let plan = &train.plans[0].tree;
    let deadline = Some(Duration::from_millis(40));

    let before = server.predict_with(plan, None, deadline).unwrap();
    assert_eq!((before.tier, before.version), (Tier::Quantized, 0));

    // Direct swap (the manual path).
    let v1 = registry.swap_base(est_b.clone()).unwrap();
    let full_b = registry.base().estimator.predict_ms(plan);
    let after = server.predict_with(plan, None, deadline).unwrap();
    assert_eq!(after.version, v1);
    let q = (after.ms / full_b).max(full_b / after.ms);
    assert!(
        q < 1.25,
        "fast tier still answering from stale weights: {} vs {}",
        after.ms,
        full_b
    );

    // Checkpoint-reload swap (the adaptive promotion path).
    let dir = std::env::temp_dir().join(format!("dace-requant-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("candidate.dace");
    let (est_c, _) = common::quick_estimator(7);
    save_checkpoint(&ckpt, &est_c).unwrap();
    let v2 = registry.swap_base_from_checkpoint(&ckpt).unwrap();
    let full_c = registry.base().estimator.predict_ms(plan);
    let promoted = server.predict_with(plan, None, deadline).unwrap();
    assert_eq!((promoted.tier, promoted.version), (Tier::Quantized, v2));
    let q = (promoted.ms / full_c).max(full_c / promoted.ms);
    assert!(q < 1.25, "twin not rebuilt on checkpoint promotion");
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn shard_and_tier_metrics_round_trip_with_help() {
    let (est, train) = common::quick_estimator(27);
    let config = ServeConfig {
        fast_tier_deadline: Some(Duration::from_millis(50)),
        ..sharded_config(2)
    };
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), config);
    for plan in train.plans.iter().take(8) {
        server.predict(&plan.tree).unwrap();
        server
            .predict_with(&plan.tree, None, Some(Duration::from_millis(10)))
            .unwrap();
    }
    let text = server.health().prometheus_text(server.metrics_registry());
    for family in [
        "serve_shard_queue_depth",
        "serve_shard_completed_total",
        "serve_steals_total",
        "serve_tier_requests_total",
    ] {
        assert!(
            text.contains(&format!("# HELP {family} ")),
            "missing HELP for {family}"
        );
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing TYPE for {family}"
        );
    }
    let parsed = dace_obs::parse_prometheus_text(&text);
    for shard in 0..2 {
        assert!(parsed.contains_key(&format!("serve_shard_queue_depth{{shard=\"{shard}\"}}")));
        assert!(parsed.contains_key(&format!("serve_shard_completed_total{{shard=\"{shard}\"}}")));
    }
    assert!(parsed.contains_key("serve_steals_total{from=\"0\",to=\"1\"}"));
    assert!(parsed.contains_key("serve_steals_total{from=\"1\",to=\"0\"}"));
    assert!(parsed["serve_tier_requests_total{tier=\"full\"}"] >= 8.0);
    assert!(parsed["serve_tier_requests_total{tier=\"quantized\"}"] >= 8.0);
    let completed: f64 = (0..2)
        .map(|s| parsed[&format!("serve_shard_completed_total{{shard=\"{s}\"}}")])
        .sum();
    assert_eq!(completed, 16.0);
    server.shutdown();
}
