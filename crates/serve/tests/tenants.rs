//! Multi-tenant isolation suite: identity hygiene at admission, quota and
//! in-flight accounting, weighted-fair lane isolation, per-tenant
//! breakers, adapter paging with zero-shot cold starts, and the
//! bounded-cardinality per-tenant metrics exposition.

mod common;

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use dace_core::save_checkpoint;
use dace_plan::PlanTree;
use dace_serve::{
    validate_tenant_id, BreakerConfig, BreakerState, CostLinearFallback, DaceServer, FaultConfig,
    HealthConfig, LifecycleEvent, ModelRegistry, PagerConfig, ServeConfig, ServeError,
    TenantConfig, FALLBACK_VERSION,
};
use proptest::prelude::*;

fn tenant_config(shards: usize, workers: usize) -> ServeConfig {
    ServeConfig {
        shards,
        workers,
        max_batch: 8,
        max_wait: Duration::from_micros(100),
        min_fill: 1,
        ..ServeConfig::default()
    }
}

fn snapshot_for(server: &DaceServer, tenant: &str) -> dace_serve::TenantSnapshot {
    server
        .tenant_snapshot()
        .into_iter()
        .find(|s| s.tenant == tenant)
        .unwrap_or_else(|| panic!("tenant {tenant} missing from snapshot"))
}

/// Tokens are charged exactly once at admission and refunded only when
/// the request never made it into a lane: at quiescence every tenant
/// satisfies `tokens_charged - tokens_refunded == submitted`, across
/// full-lane sheds, quota rejections, and in-flight-cap rejections.
#[test]
fn quota_accounting_agrees_across_every_rejection_path() {
    let (est, train) = common::quick_estimator(41);
    // No workers: admission control in isolation, nothing ever drains.
    let config = ServeConfig {
        queue_depth: 2,
        ..tenant_config(1, 0)
    };
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), config);
    let plan = &train.plans[0].tree;

    // alpha: unlimited quota, sheds on its own full lane (cap 2).
    let mut handles = Vec::new();
    for _ in 0..2 {
        handles.push(server.submit_for(Some("alpha"), plan, None, None).unwrap());
    }
    assert!(matches!(
        server.submit_for(Some("alpha"), plan, None, None),
        Err(ServeError::Overloaded)
    ));

    // beta: one-token bucket; the second immediate request is over quota.
    server.set_tenant_quota("beta", 1, 1).unwrap();
    handles.push(server.submit_for(Some("beta"), plan, None, None).unwrap());
    assert!(matches!(
        server.submit_for(Some("beta"), plan, None, None),
        Err(ServeError::QuotaExceeded)
    ));

    // gamma: in-flight cap of one; the queued (never-draining) first
    // request holds the slot, so the second is rejected and refunded.
    server.set_tenant_max_in_flight("gamma", 1).unwrap();
    handles.push(server.submit_for(Some("gamma"), plan, None, None).unwrap());
    assert!(matches!(
        server.submit_for(Some("gamma"), plan, None, None),
        Err(ServeError::QuotaExceeded)
    ));

    // Hostile ids never reach the table at all.
    for bad in ["", "ctrl\u{7}char", "q\"uote", "back\\slash"] {
        assert!(matches!(
            server.submit_for(Some(bad), plan, None, None),
            Err(ServeError::InvalidTenant(_))
        ));
    }
    assert!(server.metrics_snapshot().invalid_tenant >= 4);

    let expect = [
        // (tenant, submitted, shed, quota_rejected, charged, refunded)
        ("alpha", 2, 1, 0, 3, 1),
        ("beta", 1, 0, 1, 1, 0),
        ("gamma", 1, 0, 1, 2, 1),
    ];
    for (tenant, submitted, shed, quota_rejected, charged, refunded) in expect {
        let s = snapshot_for(&server, tenant);
        assert_eq!(
            (s.submitted, s.shed, s.quota_rejected),
            (submitted, shed, quota_rejected),
            "{tenant}: {s:?}"
        );
        assert_eq!(
            (s.tokens_charged, s.tokens_refunded),
            (charged, refunded),
            "{tenant}: {s:?}"
        );
        assert_eq!(
            s.tokens_charged - s.tokens_refunded,
            s.submitted,
            "{tenant} violates the one-token-per-admission invariant: {s:?}"
        );
    }
    assert!(server.metrics_snapshot().quota_rejected >= 2);
    drop(handles);
    server.shutdown();
}

/// A drained bucket refills at its configured rate: a tenant rejected at
/// burst exhaustion is admitted again after waiting out the refill.
#[test]
fn quota_refills_over_time() {
    let (est, train) = common::quick_estimator(42);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), tenant_config(1, 1));
    let plan = &train.plans[0].tree;
    server.set_tenant_quota("tick", 50, 1).unwrap();
    server.predict_for("tick", plan).unwrap();
    assert!(matches!(
        server.submit_for(Some("tick"), plan, None, None),
        Err(ServeError::QuotaExceeded)
    ));
    // 50 rps refills one token in 20 ms; give it a generous margin.
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        match server.submit_for(Some("tick"), plan, None, None) {
            Ok(h) => {
                h.wait().unwrap();
                break;
            }
            Err(ServeError::QuotaExceeded) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("bucket never refilled: {e}"),
        }
    }
    server.shutdown();
}

/// A flooding tenant fills and sheds against only its own lane; a
/// well-behaved tenant arriving into the flood is admitted and answered.
#[test]
fn noisy_tenant_sheds_only_its_own_traffic() {
    let (est, train) = common::quick_estimator(43);
    let config = ServeConfig {
        queue_depth: 8,
        max_batch: 1,
        // Every forward sleeps 2 ms, so the flood cannot drain fast
        // enough to hide the lane bound.
        faults: FaultConfig {
            seed: 9,
            stage_delay_ppm: 1_000_000,
            stage_delay: Duration::from_millis(2),
            ..FaultConfig::disabled()
        },
        ..tenant_config(1, 1)
    };
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), config);
    let plan = &train.plans[0].tree;

    let mut noisy_handles = Vec::new();
    let mut noisy_shed = 0u64;
    for _ in 0..60 {
        match server.submit_for(Some("noisy"), plan, None, None) {
            Ok(h) => noisy_handles.push(h),
            Err(ServeError::Overloaded) => noisy_shed += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(noisy_shed > 0, "flood must overflow the noisy lane");

    // The polite tenant's lane is empty: every request is admitted and
    // answered despite the standing flood.
    let polite: Vec<_> = (0..6)
        .map(|_| {
            server
                .submit_for(Some("polite"), plan, None, None)
                .expect("polite tenant must never be shed by someone else's flood")
        })
        .collect();
    for h in polite {
        let pred = h.wait().expect("polite request answered");
        assert!(pred.ms.is_finite() && pred.ms > 0.0);
    }
    for h in noisy_handles {
        let _ = h.wait();
    }

    let noisy = snapshot_for(&server, "noisy");
    let polite = snapshot_for(&server, "polite");
    assert_eq!(noisy.shed, noisy_shed);
    assert_eq!(polite.shed, 0, "sheds bled across lanes: {polite:?}");
    assert_eq!(polite.completed, 6);
    server.shutdown();
}

/// One tenant's deadline misses open *its* breaker: its traffic degrades
/// to the fallback while the global breaker stays closed and other
/// tenants keep getting model answers.
#[test]
fn tenant_breaker_opens_without_touching_the_global_one() {
    let (est, train) = common::quick_estimator(44);
    let fallback = Box::new(CostLinearFallback::fit(&train));
    let config = ServeConfig {
        breaker: BreakerConfig {
            window: 8,
            min_samples: 4,
            error_percent: 50,
            // Long enough that the opened breaker cannot slip into
            // half-open mid-test.
            open_cooldown: Duration::from_secs(60),
            probe_successes: 3,
        },
        ..tenant_config(1, 1)
    };
    let server = DaceServer::with_tenancy(
        Arc::new(ModelRegistry::new(est)),
        config,
        Some(fallback),
        HealthConfig::default(),
        None,
    );
    let plan = &train.plans[0].tree;

    // Already-expired deadlines: every one is triaged as a miss against
    // the tenant's own breaker.
    let handles: Vec<_> = (0..12)
        .map(|_| {
            server
                .submit_for(Some("flaky"), plan, None, Some(Duration::from_nanos(1)))
                .unwrap()
        })
        .collect();
    for h in handles {
        let _ = h.wait();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.tenant_breaker_state("flaky") != Some(BreakerState::Open) {
        assert!(Instant::now() < deadline, "tenant breaker never opened");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The flaky tenant is now answered by the fallback, degraded-flagged.
    let pred = server.predict_for("flaky", plan).unwrap();
    assert!(pred.degraded, "open tenant breaker must gate to fallback");
    assert_eq!(pred.version, FALLBACK_VERSION);

    // Isolation: the global breaker never saw the flaky tenant's
    // evidence, and a healthy tenant still gets real model answers.
    assert_eq!(server.breaker_state(), Some(BreakerState::Closed));
    let healthy = server.predict_for("steady", plan).unwrap();
    assert!(!healthy.degraded);
    assert_ne!(healthy.version, FALLBACK_VERSION);
    assert_eq!(
        server.tenant_breaker_state("steady"),
        Some(BreakerState::Closed)
    );

    let flaky = snapshot_for(&server, "flaky");
    assert!(flaky.breaker_opened >= 1, "{flaky:?}");
    assert_eq!(flaky.breaker_state, "open");
    // The transition is journaled with the tenant attached.
    let journaled = server.health().journal().records().iter().any(
        |r| matches!(&r.event, LifecycleEvent::TenantBreakerOpened { tenant, .. } if tenant == "flaky"),
    );
    assert!(journaled, "tenant breaker transition must be journaled");
    server.shutdown();
}

/// Two tenants submitting the identical plan never share a featurization
/// cache entry, and tenant-less traffic keeps its own key space.
#[test]
fn identical_plans_never_share_cache_entries_across_tenants() {
    let (est, train) = common::quick_estimator(45);
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), tenant_config(1, 1));
    let plan = &train.plans[0].tree;
    for tenant in ["t1", "t2", "t3"] {
        server.predict_for(tenant, plan).unwrap();
    }
    server.predict(plan).unwrap();
    let snap = server.metrics_snapshot();
    assert_eq!(
        snap.cache_misses, 4,
        "same plan under 3 tenants + tenant-less must be 4 distinct entries"
    );
    assert_eq!(server.cache_len(), 4);

    // Repeats hit only the submitting tenant's own entry.
    for tenant in ["t1", "t2", "t3"] {
        server.predict_for(tenant, plan).unwrap();
    }
    server.predict(plan).unwrap();
    let snap = server.metrics_snapshot();
    assert_eq!((snap.cache_misses, snap.cache_hits), (4, 4));
    assert_eq!(server.cache_len(), 4, "repeats must not mint new entries");
    server.shutdown();
}

/// Cold tenants are answered immediately, zero-shot and degraded-flagged,
/// while the pager loads their checkpoint in the background; once
/// resident, answers come from the adapter at full fidelity. Missing and
/// torn checkpoints quarantine, never block, and the hot set stays
/// bounded with LRU eviction.
#[test]
fn adapter_paging_cold_start_quarantine_and_lru() {
    let (est, train) = common::quick_estimator(46);
    let dir = std::env::temp_dir().join(format!("dace-tenant-paging-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for tenant in ["t1", "t2", "t3"] {
        save_checkpoint(&dir.join(format!("{tenant}.ckpt")), &est).unwrap();
    }
    std::fs::write(dir.join("torn.ckpt"), b"not a checkpoint").unwrap();

    let pager_cfg = PagerConfig {
        hot_set: 2,
        retry_cooldown: Duration::from_millis(50),
        ..PagerConfig::new(&dir)
    };
    let server = DaceServer::with_tenancy(
        Arc::new(ModelRegistry::new(est)),
        tenant_config(1, 1),
        None,
        HealthConfig::default(),
        Some(pager_cfg),
    );
    let pager = Arc::clone(server.pager().expect("built with a pager"));
    let plan = &train.plans[0].tree;

    // First sight of t1: answered NOW from the base model, not blocked on
    // the checkpoint read. The stamp is the base's real version (these
    // numbers did come from that snapshot), flagged degraded.
    let cold = server.predict_for("t1", plan).unwrap();
    assert!(cold.degraded, "cold-start answer must be degraded-flagged");
    assert_eq!(cold.version, 0, "zero-shot answers carry the base version");

    let wait_resident = |tenant: &str| {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pager.is_resident(tenant) {
            assert!(Instant::now() < deadline, "{tenant} never became resident");
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    wait_resident("t1");
    let warm = server.predict_for("t1", plan).unwrap();
    assert!(!warm.degraded, "resident adapter must serve at full tier");
    assert!(warm.version >= 1, "paged-in adapter gets a fresh version");

    // Missing and torn checkpoints: still answered (degraded), then
    // quarantined — and answered again from quarantine.
    for tenant in ["ghost", "torn"] {
        let pred = server.predict_for(tenant, plan).unwrap();
        assert!(pred.degraded, "{tenant} must be served zero-shot");
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pager.is_failed(tenant) {
            assert!(Instant::now() < deadline, "{tenant} load never failed");
            std::thread::sleep(Duration::from_millis(5));
        }
        let again = server.predict_for(tenant, plan).unwrap();
        assert!(again.degraded, "quarantined {tenant} keeps being answered");
    }

    // Page in past the hot set: the LRU victim is evicted, the bound holds.
    for tenant in ["t2", "t3"] {
        server.predict_for(tenant, plan).unwrap();
        wait_resident(tenant);
    }
    assert!(
        pager.resident_len() <= 2,
        "hot set exceeded its bound: {} resident",
        pager.resident_len()
    );

    let snap = server.metrics_snapshot();
    assert!(snap.cold_start >= 3, "{snap:?}");
    assert!(snap.adapter_loads >= 3, "{snap:?}");
    assert!(snap.adapter_load_failures >= 2, "{snap:?}");
    assert!(snap.adapter_evictions >= 1, "{snap:?}");
    let t1 = snapshot_for(&server, "t1");
    assert!(t1.cold_starts >= 1 && t1.degraded >= 1, "{t1:?}");
    assert_eq!(
        t1.tokens_charged - t1.tokens_refunded,
        t1.submitted,
        "cold-start answers must not charge a second token: {t1:?}"
    );
    let records = server.health().journal().records();
    for kind in ["AdapterLoaded", "AdapterLoadFailed", "AdapterEvicted"] {
        assert!(
            records.iter().any(|r| r.event.kind() == kind),
            "missing {kind} in journal"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The per-tenant exposition is bounded: exactly top-K tenants by traffic
/// get their own series, everyone else folds into `tenant="_other"`, and
/// the whole block round-trips through the text parser with HELP/TYPE.
#[test]
fn tenant_metrics_expose_top_k_exact_plus_other_aggregate() {
    let (est, train) = common::quick_estimator(47);
    let config = ServeConfig {
        tenants: TenantConfig {
            top_k_series: 3,
            ..TenantConfig::default()
        },
        ..tenant_config(1, 1)
    };
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), config);
    // t0 submits once, t1 twice, ... t7 eight times: the top-3 by traffic
    // are t7, t6, t5 and `_other` aggregates 1+2+3+4+5 = 15.
    for i in 0..8 {
        let tenant = format!("t{i}");
        for _ in 0..=i {
            server.predict_for(&tenant, &train.plans[i].tree).unwrap();
        }
    }
    let text = server.health().prometheus_text(server.metrics_registry());
    for family in [
        "serve_tenant_submitted_total",
        "serve_tenant_completed_total",
        "serve_tenant_shed_total",
        "serve_tenant_quota_rejected_total",
    ] {
        assert!(text.contains(&format!("# HELP {family} ")), "{family}");
        assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
    }
    let parsed = dace_obs::parse_prometheus_text(&text);
    for (tenant, n) in [("t7", 8.0), ("t6", 7.0), ("t5", 6.0), ("_other", 15.0)] {
        let key = format!("serve_tenant_submitted_total{{tenant=\"{tenant}\"}}");
        assert_eq!(parsed.get(&key).copied(), Some(n), "{key}");
    }
    let series: Vec<_> = parsed
        .keys()
        .filter(|k| k.starts_with("serve_tenant_submitted_total{"))
        .collect();
    assert_eq!(
        series.len(),
        4,
        "cardinality must be top-K + _other, got {series:?}"
    );
    // t0..t4 never appear as their own series.
    for i in 0..5 {
        assert!(
            !parsed.contains_key(&format!("serve_tenant_submitted_total{{tenant=\"t{i}\"}}")),
            "t{i} leaked past the top-K bound"
        );
    }
    server.shutdown();
}

static HOSTILE_SERVER: OnceLock<(DaceServer, PlanTree)> = OnceLock::new();

fn hostile_server() -> &'static (DaceServer, PlanTree) {
    HOSTILE_SERVER.get_or_init(|| {
        let (est, train) = common::quick_estimator(48);
        let config = ServeConfig {
            queue_depth: 1 << 16,
            ..tenant_config(1, 0)
        };
        let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), config);
        (server, train.plans[0].tree.clone())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary-byte tenant ids at a live admission path: never a panic,
    /// and exactly the validator's verdict — valid ids are admitted,
    /// invalid ids bounce with the typed error and never reach the
    /// tenant table or its metric labels.
    #[test]
    fn hostile_tenant_ids_never_panic_or_reach_the_table(
        bytes in proptest::collection::vec(0u8..=255u8, 0..100),
    ) {
        let id = String::from_utf8_lossy(&bytes).into_owned();
        let (server, plan) = hostile_server();
        match server.submit_for(Some(&id), plan, None, None) {
            Ok(_) => prop_assert!(
                validate_tenant_id(&id).is_ok(),
                "admitted an id the validator rejects: {id:?}"
            ),
            Err(ServeError::InvalidTenant(_)) => prop_assert!(
                validate_tenant_id(&id).is_err(),
                "rejected a valid id: {id:?}"
            ),
            Err(e) => prop_assert!(false, "unexpected error for {id:?}: {e}"),
        }
        // Whatever made it in is label-safe by construction: the whole
        // exposition still parses and every label value revalidates.
        let text = server.health().prometheus_text(server.metrics_registry());
        for key in dace_obs::parse_prometheus_text(&text).keys() {
            if let Some(rest) = key.strip_prefix("serve_tenant_") {
                if let Some(value) = rest.split("tenant=\"").nth(1) {
                    let label = value.trim_end_matches("\"}");
                    prop_assert!(
                        validate_tenant_id(label).is_ok(),
                        "polluted label value {label:?} in {key}"
                    );
                }
            }
        }
    }
}
