//! Substrate tour: generate a database, render its DDL, write a query,
//! optimize it, execute it and print `EXPLAIN ANALYZE` — the entire
//! data-collection pipeline the learned estimators feed on.
//!
//! ```text
//! cargo run --release --example explain_plan
//! ```

use dace_catalog::{generate_database, suite_specs};
use dace_engine::explain_analyze;
use dace_plan::MachineId;
use dace_query::{render_sql, ComplexWorkloadGen};

fn main() {
    let spec = &suite_specs()[0]; // the IMDB-like snowflake
    let db = generate_database(spec, 0.04);
    println!(
        "Database '{}': {} tables, {} total rows\n",
        db.spec.name,
        db.schema.tables.len(),
        db.total_rows()
    );
    println!("--- schema (excerpt) ---");
    let ddl = db.schema.render_ddl();
    for line in ddl.lines().take(24) {
        println!("{line}");
    }
    println!("…\n");

    // Generate a few queries and EXPLAIN ANALYZE them on both machines.
    let queries = ComplexWorkloadGen {
        max_joins: 3,
        max_predicates: 2,
        agg_prob: 0.5,
        seed: 7,
    }
    .generate(&db, 3);

    for (i, q) in queries.iter().enumerate() {
        println!("=== query {} ===", i + 1);
        println!("{}\n", render_sql(q, &db.schema));
        let (tree, text) = explain_analyze(&db, q, MachineId::M1);
        println!("EXPLAIN ANALYZE (machine M1):\n{text}");
        println!(
            "plan: {} nodes, optimizer cost {:.1}, actual latency {:.3} ms",
            tree.len(),
            tree.est_cost(),
            tree.actual_ms()
        );
        let (tree2, _) = explain_analyze(&db, q, MachineId::M2);
        println!(
            "same plan on machine M2: {:.3} ms (different hardware, different EDQO)\n",
            tree2.actual_ms()
        );
    }
}
