//! Across-more (Drift V): pre-train DACE on machine M1, then adapt it to
//! machine M2 with LoRA — training only the low-rank adapters ΔW = B·A
//! (Eq. 8 of the paper) at a fraction of the cost of retraining.
//!
//! ```text
//! cargo run --release --example lora_finetune
//! ```

use std::time::Instant;

use dace_catalog::{generate_database, suite_specs};
use dace_core::{TrainConfig, Trainer};
use dace_engine::collect_dataset;
use dace_eval::qerror;
use dace_plan::{Dataset, MachineId};
use dace_query::ComplexWorkloadGen;

fn median_qerror(est: &dace_core::DaceEstimator, ds: &Dataset) -> f64 {
    let mut qs: Vec<f64> = ds
        .plans
        .iter()
        .map(|p| qerror(est.predict_ms(&p.tree), p.latency_ms()))
        .collect();
    qs.sort_by(f64::total_cmp);
    qs[qs.len() / 2]
}

fn main() {
    let specs = suite_specs();
    let gen = ComplexWorkloadGen::default();

    // Workload 1: labels collected on M1 across four databases.
    // Workload 2: the same query statements executed on M2.
    println!("Collecting workloads on machines M1 and M2…");
    let mut wl1 = Dataset::new();
    let mut wl2 = Dataset::new();
    for spec in specs.iter().take(4) {
        let db = generate_database(spec, 0.04);
        let queries = gen.generate(&db, 250);
        wl1.extend(collect_dataset(&db, &queries, MachineId::M1));
        wl2.extend(collect_dataset(&db, &queries, MachineId::M2));
    }
    let (train1, test1) = wl1.split(0.2);
    let (train2, test2) = wl2.split(0.2);

    // Pre-train on M1.
    println!("Pre-training DACE on workload 1 ({} plans)…", train1.len());
    let t0 = Instant::now();
    let mut est = Trainer::new(TrainConfig {
        epochs: 25,
        ..Default::default()
    })
    .fit(&train1)
    .unwrap();
    let pretrain_secs = t0.elapsed().as_secs_f64();

    println!(
        "  M1 test median qerror: {:.2}",
        median_qerror(&est, &test1)
    );
    let before_m2 = median_qerror(&est, &test2);
    println!("  M2 test median qerror BEFORE adaptation: {before_m2:.2}");

    // LoRA fine-tune on M2 labels: only ΔW trains, W stays frozen.
    println!(
        "\nLoRA fine-tuning on workload 2 ({} plans, {} adapter params of {} total)…",
        train2.len(),
        est.model.lora_param_count(),
        est.model.base_param_count() + est.model.lora_param_count()
    );
    let t1 = Instant::now();
    est.fine_tune_lora(&train2, 12, 2e-3).unwrap();
    let tune_secs = t1.elapsed().as_secs_f64();

    let after_m2 = median_qerror(&est, &test2);
    println!("  M2 test median qerror AFTER adaptation:  {after_m2:.2}");
    println!(
        "\nPre-training took {pretrain_secs:.1}s; LoRA tuning took {tune_secs:.1}s ({:.1}× cheaper per epoch-plan).",
        (pretrain_secs / 25.0) / (tune_secs / 12.0) * (train1.len() as f64 / train2.len() as f64)
    );
    assert!(
        after_m2 <= before_m2,
        "fine-tuning should not hurt M2 accuracy"
    );
}
