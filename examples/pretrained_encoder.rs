//! Knowledge integration (Eq. 9): use a pre-trained DACE as an encoder
//! inside MSCN and watch the cold-start problem disappear — DACE-MSCN is
//! accurate with a fraction of the training queries plain MSCN needs.
//!
//! ```text
//! cargo run --release --example pretrained_encoder
//! ```

use dace_baselines::{CostEstimator, Mscn};
use dace_catalog::{generate_database, suite_specs};
use dace_core::{TrainConfig, Trainer};
use dace_engine::collect_dataset;
use dace_eval::qerror;
use dace_plan::{Dataset, MachineId};
use dace_query::{MscnSet, MscnWorkloadGen};

fn median(model: &dyn CostEstimator, ds: &Dataset) -> f64 {
    let mut qs: Vec<f64> = ds
        .plans
        .iter()
        .map(|p| qerror(model.predict_ms(&p.tree), p.latency_ms()))
        .collect();
    qs.sort_by(f64::total_cmp);
    qs[qs.len() / 2]
}

fn main() {
    let specs = suite_specs();

    // Pre-train DACE on three databases that are NOT the IMDB-like target.
    println!("Pre-training the DACE encoder on 3 foreign databases…");
    let gen = dace_query::ComplexWorkloadGen::default();
    let mut pretrain = Dataset::new();
    for spec in &specs[1..4] {
        let db = generate_database(spec, 0.04);
        let queries = gen.generate(&db, 250);
        pretrain.extend(collect_dataset(&db, &queries, MachineId::M1));
    }
    let dace = Trainer::new(TrainConfig {
        epochs: 25,
        ..Default::default()
    })
    .fit(&pretrain)
    .unwrap();

    // Target: the IMDB-like database with the MSCN benchmark.
    let imdb = generate_database(&specs[0], 0.04);
    let mscn_gen = MscnWorkloadGen::default();
    let train_full = collect_dataset(&imdb, &mscn_gen.gen_train(&imdb, 1_000), MachineId::M1);
    let job_light = collect_dataset(
        &imdb,
        &mscn_gen.gen_test(&imdb, MscnSet::JobLight, 70),
        MachineId::M1,
    );

    println!("\nJOB-light median qerror by number of training queries:\n");
    println!("| #queries | MSCN  | DACE-MSCN |");
    println!("|----------|-------|-----------|");
    for n in [50usize, 200, 1_000] {
        let train = Dataset::from_plans(train_full.plans[..n].to_vec());
        let mut plain = Mscn::new(5);
        plain.epochs = 25;
        plain.fit(&train);
        let mut integrated = Mscn::with_encoder(5, dace.clone());
        integrated.epochs = 25;
        integrated.fit(&train);
        println!(
            "| {n:>8} | {:>5.2} | {:>9.2} |",
            median(&plain, &job_light),
            median(&integrated, &job_light)
        );
    }
    println!(
        "\nThe DACE embedding ({} dims) gives MSCN a warm start: with only 50 queries\n\
         it already encodes how plan shape maps to cost — plain MSCN must learn\n\
         everything from scratch.",
        dace_core::ENCODING_DIM
    );
}
