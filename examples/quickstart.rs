//! Quickstart: train a small DACE on two synthetic databases and predict
//! latencies on a third database it has never seen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dace_catalog::{generate_database, suite_specs};
use dace_core::{TrainConfig, Trainer};
use dace_engine::collect_dataset;
use dace_eval::qerror;
use dace_plan::{Dataset, MachineId};
use dace_query::ComplexWorkloadGen;

fn main() {
    // 1. Build two training databases and one unseen test database.
    let specs = suite_specs();
    println!("Generating databases…");
    let train_dbs = [
        generate_database(&specs[2], 0.04),
        generate_database(&specs[3], 0.04),
    ];
    let test_db = generate_database(&specs[4], 0.04);

    // 2. Collect labeled plans: plan → execute → time, exactly what
    //    `EXPLAIN ANALYZE` harvesting does in the paper.
    let gen = ComplexWorkloadGen::default();
    let mut train = Dataset::new();
    for db in &train_dbs {
        let queries = gen.generate(db, 300);
        train.extend(collect_dataset(db, &queries, MachineId::M1));
        println!("  collected {} plans from {}", 300, db.spec.name);
    }

    // 3. Train DACE.
    println!("Training DACE on {} plans…", train.len());
    let est = Trainer::new(TrainConfig {
        epochs: 25,
        ..Default::default()
    })
    .fit(&train)
    .unwrap();
    println!(
        "  model size: {:.3} MB ({} parameters)",
        est.model.size_mb(),
        est.model.base_param_count()
    );

    // 4. Zero-shot predictions on the unseen database.
    let test_queries = gen.generate(&test_db, 100);
    let test = collect_dataset(&test_db, &test_queries, MachineId::M1);
    let mut qs: Vec<f64> = test
        .plans
        .iter()
        .map(|p| qerror(est.predict_ms(&p.tree), p.latency_ms()))
        .collect();
    qs.sort_by(f64::total_cmp);
    println!(
        "\nZero-shot on unseen database '{}' ({} queries):",
        test_db.spec.name,
        test.len()
    );
    println!("  median qerror: {:.2}", qs[qs.len() / 2]);
    println!("  p95 qerror:    {:.2}", qs[(qs.len() * 95) / 100]);

    // 5. Peek at one prediction.
    let sample = &test.plans[0];
    println!(
        "\nSample plan — predicted {:.2} ms, actual {:.2} ms:\n{}",
        est.predict_ms(&sample.tree),
        sample.latency_ms(),
        dace_plan::explain_tree(&sample.tree)
    );
}
