//! Trace one serving session end to end: enable span tracing, drive a few
//! predictions through the micro-batching scheduler, then inspect what the
//! flight recorder and the metrics registry saw.
//!
//! ```text
//! cargo run --release --example trace_inference
//! ```
//!
//! Writes `trace_inference.json` (Chrome trace-event format — load it in
//! `chrome://tracing` or Perfetto) and prints the serve-path metrics as
//! Prometheus text.

use std::sync::Arc;

use dace_catalog::{generate_database, suite_specs};
use dace_core::{TrainConfig, Trainer};
use dace_engine::collect_dataset;
use dace_obs::{chrome_trace, set_tracing, span, FlightRecorder};
use dace_plan::MachineId;
use dace_query::ComplexWorkloadGen;
use dace_serve::{DaceServer, ModelRegistry, ServeConfig};

fn main() {
    // Tracing is off by default (a disabled span is one atomic load);
    // flipping it on makes every span! site record into the global
    // flight-recorder ring buffer.
    set_tracing(true);

    // 1. A small labeled dataset and a briefly trained estimator. Training
    //    and featurization are themselves traced ("train_epoch",
    //    "featurize", "validate" spans).
    let db = generate_database(&suite_specs()[0], 0.04);
    let gen = ComplexWorkloadGen::default();
    let data = collect_dataset(&db, &gen.generate(&db, 80), MachineId::M1);
    println!("training on {} plans…", data.len());
    let est = Trainer::new(TrainConfig {
        epochs: 3,
        validation_fraction: 0.2,
        patience: 3,
        ..Default::default()
    })
    .fit(&data)
    .unwrap();

    // 2. Serve a burst of predictions. The scheduler's drain / featurize /
    //    forward / respond stages all carry spans, and every prediction
    //    returns its per-stage µs breakdown.
    let server = DaceServer::new(Arc::new(ModelRegistry::new(est)), ServeConfig::default());
    {
        let _span = span!("client_burst");
        for p in data.plans.iter().take(24) {
            let pred = server.predict(&p.tree).expect("prediction failed");
            if let Some(stages) = pred.stages {
                let _ = stages; // queue_wait_us, featurize_us, attention_us…
            }
        }
    }

    // 3. What did the recorder see? Snapshot drains the ring buffer:
    //    writers were never blocked, overflow is drop-counted.
    let recorder = FlightRecorder::global();
    let events = recorder.snapshot_records();
    println!(
        "\nflight recorder: {} events captured, {} dropped",
        events.len(),
        recorder.dropped()
    );
    let mut by_name: std::collections::BTreeMap<&str, (usize, u64)> = Default::default();
    for e in &events {
        let entry = by_name.entry(e.name.as_str()).or_default();
        entry.0 += 1;
        entry.1 += e.dur_us;
    }
    println!("{:<16} {:>7} {:>12}", "span", "count", "total µs");
    for (name, (count, total_us)) in &by_name {
        println!("{name:<16} {count:>7} {total_us:>12}");
    }

    // 4. Export: Chrome trace JSON + Prometheus text.
    let trace_path = "trace_inference.json";
    std::fs::write(trace_path, chrome_trace(&events)).expect("cannot write trace");
    println!("\nwrote {trace_path} — open it in chrome://tracing or Perfetto");
    println!("\nserve metrics (Prometheus text):");
    print!("{}", server.metrics_registry().prometheus_text());
}
