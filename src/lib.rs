//! Umbrella crate: re-exports the whole DACE reproduction workspace.
//!
//! Prefer depending on the individual crates (`dace-core`, `dace-engine`, …)
//! in real projects; this facade exists so the examples and integration
//! tests read naturally.

pub use dace_baselines as baselines;
pub use dace_catalog as catalog;
pub use dace_core as core;
pub use dace_engine as engine;
pub use dace_eval as eval;
pub use dace_nn as nn;
pub use dace_plan as plan;
pub use dace_query as query;
pub use dace_serve as serve;
