//! Property tests for the batched padded-tensor training path: packing a
//! mini-batch of plans into one block-diagonal attention call must be
//! equivalent to running each plan through the model independently — for
//! the forward pass and for the accumulated gradient — up to floating-point
//! summation order (asserted at 1e-4).

use dace_core::{DaceModel, LossAdjuster, PackedBatch, PlanFeatures, FEATURE_DIM};
use dace_nn::Tensor2;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build a random plan: a genuine tree over `n` nodes (random parent
/// pointers), its ancestor-or-self mask, node depths as heights, and random
/// features/targets.
fn random_plan(n: usize, seed: u64) -> PlanFeatures {
    let mut rng = SmallRng::seed_from_u64(seed);
    let x = Tensor2::uniform(n, FEATURE_DIM, 1.0, seed ^ 0xFEA7);
    let mut parent = vec![usize::MAX; n];
    for (i, p) in parent.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i);
    }
    let mut mask = vec![false; n * n];
    let mut heights = vec![0u32; n];
    for j in 0..n {
        // Walk ancestors of j: every one (and j itself) may attend to j.
        let mut a = j;
        loop {
            mask[a * n + j] = true;
            if a == 0 {
                break;
            }
            a = parent[a];
            heights[j] += 1;
        }
    }
    let targets: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..6.0)).collect();
    PlanFeatures {
        x,
        mask,
        heights,
        targets,
    }
}

fn plan_strategy() -> impl Strategy<Value = PlanFeatures> {
    (1usize..=6, 0u64..1_000_000).prop_map(|(n, seed)| random_plan(n, seed))
}

/// Sum of every parameter gradient, flattened in parameter order.
fn flat_grads(model: &mut DaceModel) -> Vec<f32> {
    model
        .params_mut()
        .iter()
        .flat_map(|p| p.grad.as_slice().to_vec())
        .collect()
}

proptest! {
    #[test]
    fn batched_forward_matches_per_plan_forwards(
        plans in vec(plan_strategy(), 1..=4),
        seed in 0u64..1_000,
    ) {
        let model = DaceModel::new(seed);
        let refs: Vec<&PlanFeatures> = plans.iter().collect();
        let packed = PackedBatch::pack(&refs).unwrap();
        let mut batched = model.clone();
        let preds = batched.forward_batch(&packed);
        for (b, f) in plans.iter().enumerate() {
            let single = model.predict(f);
            for r in 0..f.x.rows() {
                let got = preds.get(b * packed.n_max + r, 0);
                let want = single.get(r, 0);
                prop_assert!(
                    (got - want).abs() < 1e-4,
                    "plan {b} row {r}: batched {got} vs single {want}"
                );
            }
        }
    }

    #[test]
    fn batched_gradient_matches_accumulated_per_plan(
        plans in vec(plan_strategy(), 1..=4),
        seed in 0u64..1_000,
    ) {
        let adjuster = LossAdjuster::new(0.5);
        let count = plans.len() as f32;

        // Reference: one backward per plan, gradients accumulate in the
        // parameters (exactly the pre-batching training loop's batch body).
        let mut per_plan = DaceModel::new(seed);
        for f in &plans {
            let preds = per_plan.forward(f);
            let slice: Vec<f32> = (0..preds.rows()).map(|r| preds.get(r, 0)).collect();
            let (_, grad) = adjuster.loss_and_grad(&slice, &f.targets, &f.heights);
            let mut d = Tensor2::zeros(preds.rows(), 1);
            for (r, g) in grad.iter().enumerate() {
                d.set(r, 0, g / count);
            }
            per_plan.backward(&d);
        }
        let want = flat_grads(&mut per_plan);

        // Batched: one block-diagonal forward/backward over the packed
        // batch, per-plan loss normalization applied per block.
        let mut batched = DaceModel::new(seed);
        let refs: Vec<&PlanFeatures> = plans.iter().collect();
        let packed = PackedBatch::pack(&refs).unwrap();
        let preds = batched.forward_batch(&packed);
        let mut d = Tensor2::zeros(packed.rows(), 1);
        for b in 0..packed.count {
            let base = b * packed.n_max;
            let n = packed.lens[b];
            let wsum: f32 = (0..n)
                .map(|i| adjuster.weight(packed.heights[base + i]))
                .sum::<f32>()
                .max(1e-12);
            for i in 0..n {
                let w = adjuster.weight(packed.heights[base + i]);
                let err = preds.get(base + i, 0) - packed.targets[base + i];
                d.set(base + i, 0, 2.0 * w * err / wsum / count);
            }
        }
        batched.backward(&d);
        let got = flat_grads(&mut batched);

        prop_assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!(
                (g - w).abs() < 1e-4 * (1.0 + w.abs()),
                "grad[{i}]: batched {g} vs per-plan {w}"
            );
        }
    }
}
