//! Property tests for crash-safe checkpoint persistence.
//!
//! The contract under test: `decode_checkpoint` over *any* corruption of a
//! valid checkpoint — truncation at an arbitrary offset, a single flipped
//! bit anywhere — either returns a typed [`CheckpointError`] or a model
//! whose predictions are bit-identical to the original. It must never
//! panic and never produce a silently-wrong model. A torn write is
//! indistinguishable from a truncation, so this is exactly the guarantee
//! the serving registry's reload path leans on.

use dace_core::{
    decode_checkpoint, encode_checkpoint, fnv1a64, load_checkpoint, save_checkpoint,
    CheckpointError, DaceEstimator, TrainConfig, Trainer, CHECKPOINT_MAGIC,
};
use dace_plan::{Dataset, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A tiny learnable dataset (same shape the serve tests train on).
fn tiny_dataset(n: usize) -> Dataset {
    let plans = (0..n)
        .map(|i| {
            let cost = 100.0 + 37.0 * i as f64;
            let mut b = TreeBuilder::new();
            let scan = {
                let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                node.est_cost = cost;
                node.est_rows = cost * 8.0;
                node.actual_ms = cost * 0.004;
                node.actual_rows = cost * 8.0;
                b.leaf(node)
            };
            let root = {
                let mut node = PlanNode::new(NodeType::HashJoin, OpPayload::Other);
                node.est_cost = cost * 2.0;
                node.est_rows = cost;
                node.actual_ms = cost * 0.01;
                node.actual_rows = cost;
                b.internal(node, vec![scan])
            };
            LabeledPlan {
                tree: b.finish(root),
                db_id: 0,
                machine: MachineId::M1,
            }
        })
        .collect();
    Dataset::from_plans(plans)
}

/// One trained estimator, its canonical checkpoint bytes, and its
/// predictions over the training plans — trained once, shared by every
/// proptest case.
fn fixture() -> &'static (DaceEstimator, Vec<u8>, Vec<f64>, Dataset) {
    static FIX: OnceLock<(DaceEstimator, Vec<u8>, Vec<f64>, Dataset)> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = tiny_dataset(24);
        let est = Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .fit(&data)
        .unwrap();
        let bytes = encode_checkpoint(&est);
        let trees: Vec<_> = data.plans.iter().map(|p| &p.tree).collect();
        let preds = est.predict_batch_ms(&trees);
        (est, bytes, preds, data)
    })
}

/// The decode contract for possibly-corrupt bytes: typed error, or a model
/// that predicts bit-identically. Anything else fails the property.
fn assert_err_or_identical(bytes: &[u8]) {
    let (_, _, canonical, data) = fixture();
    match decode_checkpoint(bytes) {
        Err(_) => {} // typed rejection is the expected outcome
        Ok(decoded) => {
            let trees: Vec<_> = data.plans.iter().map(|p| &p.tree).collect();
            let preds = decoded.predict_batch_ms(&trees);
            for (a, b) in canonical.iter().zip(&preds) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "corruption survived decode but changed predictions"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any offset — a torn write — must be rejected (or, at
    /// the full length, decode the identical model).
    #[test]
    fn truncation_never_yields_a_wrong_model(frac in 0.0f64..1.0) {
        let (_, bytes, _, _) = fixture();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let prefix = &bytes[..cut.min(bytes.len())];
        if prefix.len() < bytes.len() {
            prop_assert!(
                decode_checkpoint(prefix).is_err(),
                "a {}-byte prefix of a {}-byte checkpoint decoded cleanly",
                prefix.len(),
                bytes.len()
            );
        } else {
            assert_err_or_identical(prefix);
        }
    }

    /// A single flipped bit anywhere in the file must be detected: header
    /// flips fail strict parsing, payload flips fail the FNV checksum.
    #[test]
    fn single_bit_flip_is_always_detected(frac in 0.0f64..1.0, bit in 0u8..8) {
        let (_, bytes, _, _) = fixture();
        let pos = (((bytes.len() - 1) as f64) * frac) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        prop_assert!(
            decode_checkpoint(&corrupt).is_err(),
            "bit {bit} of byte {pos} flipped silently"
        );
    }

    /// Multi-byte stomps (overwrite a random run with a random byte) obey
    /// the same contract.
    #[test]
    fn byte_stomps_error_or_roundtrip(frac in 0.0f64..1.0, len in 1usize..64, fill in 0u8..=255) {
        let (_, bytes, _, _) = fixture();
        let pos = (((bytes.len() - 1) as f64) * frac) as usize;
        let mut corrupt = bytes.clone();
        let end = (pos + len).min(corrupt.len());
        for b in &mut corrupt[pos..end] {
            *b = fill;
        }
        assert_err_or_identical(&corrupt);
    }
}

#[test]
fn atomic_save_load_roundtrip_is_bit_identical() {
    let (est, _, canonical, data) = fixture();
    let dir = std::env::temp_dir().join(format!("dace-ckpt-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ckpt");
    save_checkpoint(&path, est).expect("atomic save");
    let loaded = load_checkpoint(&path).expect("load of a clean checkpoint");
    let trees: Vec<_> = data.plans.iter().map(|p| &p.tree).collect();
    let preds = loaded.predict_batch_ms(&trees);
    for (a, b) in canonical.iter().zip(&preds) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // No temp litter left behind by the atomic rename.
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
        .collect();
    assert!(stray.is_empty(), "atomic save left temp files: {stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn header_is_strict_about_shape() {
    let (_, bytes, _, _) = fixture();
    // Sanity: the canonical encoding decodes and self-describes.
    assert!(bytes.starts_with(CHECKPOINT_MAGIC.as_bytes()));
    decode_checkpoint(bytes).expect("canonical bytes decode");

    // Uppercase hex in the checksum field is rejected even though
    // from_str_radix would accept it — otherwise an 'a'→'A' bit flip
    // inside the checksum field would round-trip undetected.
    let text = String::from_utf8(bytes.clone()).unwrap();
    let (header, payload) = text.split_once('\n').unwrap();
    let upper = format!("{}\n{payload}", header.to_uppercase());
    assert!(matches!(
        decode_checkpoint(upper.as_bytes()),
        Err(CheckpointError::BadHeader(_))
    ));

    // Wrong magic.
    let wrong = text.replacen("DACE-CKPT-V1", "DACE-CKPT-V9", 1);
    assert!(decode_checkpoint(wrong.as_bytes()).is_err());

    // Declared length that disagrees with the payload.
    let fnv = fnv1a64(payload.as_bytes());
    let lied = format!(
        "{CHECKPOINT_MAGIC} len={} fnv={fnv:016x}\n{payload}",
        payload.len() + 1
    );
    assert!(matches!(
        decode_checkpoint(lied.as_bytes()),
        Err(CheckpointError::LengthMismatch { .. })
    ));
}

#[test]
fn load_of_missing_file_is_a_typed_io_error() {
    let path = std::env::temp_dir().join(format!("dace-no-such-ckpt-{}", std::process::id()));
    assert!(matches!(
        load_checkpoint(&path),
        Err(CheckpointError::Io(_))
    ));
}
