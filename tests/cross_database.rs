//! The headline behaviours, end to end at small scale: zero-shot transfer
//! to an unseen database, LoRA adaptation to a new machine, and knowledge
//! integration into a within-database model.

use dace_baselines::{CostEstimator, Mscn};
use dace_catalog::{generate_database, suite_specs};
use dace_core::{TrainConfig, Trainer};
use dace_engine::collect_dataset;
use dace_eval::qerror;
use dace_plan::{Dataset, MachineId};
use dace_query::ComplexWorkloadGen;

fn collect(db_idx: usize, n: usize, machine: MachineId) -> Dataset {
    let db = generate_database(&suite_specs()[db_idx], 0.05);
    let queries = ComplexWorkloadGen::default().generate(&db, n);
    collect_dataset(&db, &queries, machine)
}

fn median_q(est: &dace_core::DaceEstimator, ds: &Dataset) -> f64 {
    let mut qs: Vec<f64> = ds
        .plans
        .iter()
        .map(|p| qerror(est.predict_ms(&p.tree), p.latency_ms()))
        .collect();
    qs.sort_by(f64::total_cmp);
    qs[qs.len() / 2]
}

#[test]
fn dace_transfers_to_an_unseen_database() {
    let mut train = Dataset::new();
    for idx in [2usize, 3, 5, 8] {
        train.extend(collect(idx, 150, MachineId::M1));
    }
    let test = collect(9, 100, MachineId::M1);
    let est = Trainer::new(TrainConfig {
        epochs: 20,
        ..Default::default()
    })
    .fit(&train)
    .unwrap();
    let q = median_q(&est, &test);
    assert!(
        q < 2.0,
        "zero-shot median qerror on unseen database too high: {q}"
    );
}

#[test]
fn lora_adapts_to_the_other_machine() {
    // Pre-train on M1 over several databases, adapt on the same databases'
    // M2 labels (the paper's workload-2 protocol), test on an unseen
    // database's M2 labels.
    let mut train_m1 = Dataset::new();
    let mut adapt_m2 = Dataset::new();
    for idx in [4usize, 7, 11, 13] {
        train_m1.extend(collect(idx, 200, MachineId::M1));
        adapt_m2.extend(collect(idx, 200, MachineId::M2));
    }
    let test_m2 = collect(10, 100, MachineId::M2);

    let mut est = Trainer::new(TrainConfig {
        epochs: 20,
        ..Default::default()
    })
    .fit(&train_m1)
    .unwrap();
    let before = median_q(&est, &test_m2);
    est.fine_tune_lora(&adapt_m2, 10, 2e-3).unwrap();
    let after = median_q(&est, &test_m2);
    assert!(
        after < before * 1.05,
        "LoRA adaptation regressed: {before} -> {after}"
    );
    assert!(after < 2.2, "adapted qerror too high: {after}");
}

#[test]
fn dace_encoder_warm_starts_mscn() {
    // Pre-train DACE away from the target database.
    let mut pretrain = Dataset::new();
    for idx in [1usize, 2, 3] {
        pretrain.extend(collect(idx, 150, MachineId::M1));
    }
    let dace = Trainer::new(TrainConfig {
        epochs: 20,
        ..Default::default()
    })
    .fit(&pretrain)
    .unwrap();

    // Tiny within-database training budget (cold start).
    let target_train = collect(0, 60, MachineId::M1);
    let target_test = collect(0, 400, MachineId::M1);
    let target_test = Dataset::from_plans(target_test.plans[300..].to_vec());

    let eval = |m: &dyn CostEstimator| {
        let mut qs: Vec<f64> = target_test
            .plans
            .iter()
            .map(|p| qerror(m.predict_ms(&p.tree), p.latency_ms()))
            .collect();
        qs.sort_by(f64::total_cmp);
        qs[qs.len() / 2]
    };

    let mut plain = Mscn::new(3);
    plain.epochs = 20;
    plain.fit(&target_train);
    let mut integrated = Mscn::with_encoder(3, dace);
    integrated.epochs = 20;
    integrated.fit(&target_train);

    let q_plain = eval(&plain);
    let q_integrated = eval(&integrated);
    assert!(
        q_integrated < q_plain * 1.2,
        "knowledge integration should not hurt: {q_plain} vs {q_integrated}"
    );
    assert!(
        q_integrated < 3.0,
        "integrated model too inaccurate: {q_integrated}"
    );
}

#[test]
fn model_size_ordering_matches_table2() {
    use dace_baselines::{QppNet, QueryFormer, TPool, ZeroShot};
    let dace_params = dace_core::DaceModel::new(0).base_param_count();
    let models: Vec<(usize, &str)> = vec![
        (Mscn::new(0).param_count(), "MSCN"),
        (QppNet::new(0).param_count(), "QPPNet"),
        (TPool::new(0).param_count(), "TPool"),
        (QueryFormer::new(0).param_count(), "QueryFormer"),
        (ZeroShot::new(0).param_count(), "Zero-Shot"),
    ];
    for (params, name) in &models {
        assert!(
            *params > dace_params * 5,
            "{name} ({params}) should dwarf DACE ({dace_params})"
        );
    }
    // QueryFormer is the largest (Table II).
    let qf = QueryFormer::new(0).param_count();
    assert!(models.iter().all(|(p, _)| *p <= qf));
}
