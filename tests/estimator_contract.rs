//! Contract tests every estimator must satisfy: fit on a small corpus,
//! produce finite positive predictions on in- and out-of-distribution
//! plans, and report sane parameter counts.

use dace_baselines::{CostEstimator, Mscn, PgLinear, QppNet, QueryFormer, TPool, ZeroShot};
use dace_catalog::{generate_database, suite_specs};
use dace_engine::collect_dataset;
use dace_plan::{Dataset, MachineId};
use dace_query::ComplexWorkloadGen;

fn corpora() -> (Dataset, Dataset, Dataset) {
    let db = generate_database(&suite_specs()[3], 0.04);
    let queries = ComplexWorkloadGen::default().generate(&db, 120);
    let ds = collect_dataset(&db, &queries, MachineId::M1);
    let (train, test) = ds.split(0.25);
    // Out-of-distribution: a different database entirely.
    let other = generate_database(&suite_specs()[14], 0.04);
    let other_q = ComplexWorkloadGen::default().generate(&other, 30);
    let ood = collect_dataset(&other, &other_q, MachineId::M1);
    (train, test, ood)
}

fn check(model: &mut dyn CostEstimator, train: &Dataset, test: &Dataset, ood: &Dataset) {
    model.fit(train);
    for ds in [test, ood] {
        for p in &ds.plans {
            let pred = model.predict_ms(&p.tree);
            assert!(
                pred.is_finite() && pred > 0.0,
                "{} produced bad prediction {pred}",
                model.name()
            );
        }
    }
    assert!(model.param_count() >= 2, "{}", model.name());
    assert!(model.size_mb() >= 0.0);
    // In-distribution predictions must beat a constant-output strawman:
    // correlation between log-pred and log-actual should be positive.
    let xs: Vec<f64> = test
        .plans
        .iter()
        .map(|p| model.predict_ms(&p.tree).max(1e-9).ln())
        .collect();
    let ys: Vec<f64> = test.plans.iter().map(|p| p.latency_ms().ln()).collect();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let corr = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
    assert!(
        corr > 0.2,
        "{}: predictions uncorrelated with latency (corr {corr})",
        model.name()
    );
}

#[test]
fn all_baselines_satisfy_the_contract() {
    let (train, test, ood) = corpora();
    let epochs = 12;
    let mut pg = PgLinear::new();
    check(&mut pg, &train, &test, &ood);
    let mut mscn = Mscn::new(1);
    mscn.epochs = epochs;
    check(&mut mscn, &train, &test, &ood);
    let mut qpp = QppNet::new(2);
    qpp.epochs = epochs;
    check(&mut qpp, &train, &test, &ood);
    let mut tpool = TPool::new(3);
    tpool.epochs = epochs;
    check(&mut tpool, &train, &test, &ood);
    let mut qf = QueryFormer::new(4);
    qf.epochs = epochs;
    check(&mut qf, &train, &test, &ood);
    let mut zs = ZeroShot::new(5);
    zs.epochs = epochs;
    check(&mut zs, &train, &test, &ood);
}

#[test]
fn dace_satisfies_the_contract_via_the_adapter() {
    let (train, test, ood) = corpora();
    use dace_core::TrainConfig;
    let mut dace = dace_eval::models::Dace::with_config(
        TrainConfig {
            epochs: 15,
            ..Default::default()
        },
        "DACE",
    );
    check(&mut dace, &train, &test, &ood);
}
