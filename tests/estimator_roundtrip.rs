//! Property test: estimator serialization is load-bearing for the serving
//! registry's adapter hand-off, so `DaceEstimator::to_json` → `from_json`
//! must preserve predictions *bit-identically* — any drift would make a
//! hot-swapped model silently disagree with the one that was trained.

use dace_catalog::{generate_database, suite_specs, Database};
use dace_core::{DaceEstimator, TrainConfig, Trainer};
use dace_engine::label_query;
use dace_plan::{MachineId, PlanTree};
use dace_query::ComplexWorkloadGen;
use proptest::prelude::*;
use std::sync::OnceLock;

fn test_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| generate_database(&suite_specs()[2], 0.05))
}

/// One trained estimator plus its JSON round-trip twin, shared across cases.
fn est_pair() -> &'static (DaceEstimator, DaceEstimator) {
    static PAIR: OnceLock<(DaceEstimator, DaceEstimator)> = OnceLock::new();
    PAIR.get_or_init(|| {
        let db = test_db();
        let gen = ComplexWorkloadGen {
            max_joins: 4,
            ..ComplexWorkloadGen::default()
        };
        let data = dace_engine::collect_dataset(db, &gen.generate(db, 32), MachineId::M1);
        let est = Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .fit(&data)
        .unwrap();
        let restored = DaceEstimator::from_json(&est.to_json()).expect("round-trip parse");
        (est, restored)
    })
}

/// Strategy: a random plan tree drawn from the complex workload generator
/// (joins, aggregates, sorts — the same shapes the serve path sees).
fn plan_strategy() -> impl Strategy<Value = PlanTree> {
    (0u64..1_000_000, 1usize..=6).prop_map(|(seed, joins)| {
        let db = test_db();
        let gen = ComplexWorkloadGen {
            seed,
            max_joins: joins,
            ..ComplexWorkloadGen::default()
        };
        let q = gen.generate(db, 1).pop().expect("one query");
        label_query(db, &q, MachineId::M1, seed).unwrap().tree
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// to_json → from_json must be invisible to batched prediction: same
    /// trees, bit-identical outputs (f32 weights survive the vendored
    /// serde_json exactly; the forward path is deterministic).
    #[test]
    fn json_roundtrip_preserves_predict_batch_ms(
        plans in proptest::collection::vec(plan_strategy(), 1..=5),
    ) {
        let (est, restored) = est_pair();
        let trees: Vec<&PlanTree> = plans.iter().collect();
        let a = est.predict_batch_ms(&trees);
        let b = restored.predict_batch_ms(&trees);
        prop_assert_eq!(a.clone(), b, "round-tripped estimator diverged on {:?}", a);
    }

    /// The single-plan path must agree too (the serve scheduler mixes both
    /// depending on batch fill).
    #[test]
    fn json_roundtrip_preserves_predict_ms(plan in plan_strategy()) {
        let (est, restored) = est_pair();
        prop_assert_eq!(est.predict_ms(&plan), restored.predict_ms(&plan));
    }
}
