//! Smoke tests for the experiment harness: run a representative subset of
//! the table/figure runners end-to-end at micro scale and check the reports
//! are well-formed. (The full-scale runs live in `results/` and
//! EXPERIMENTS.md; this guards the harness code itself.)

use dace_eval::experiments::{run_experiment, Ctx, EXPERIMENTS};
use dace_eval::EvalConfig;

fn micro_ctx() -> Ctx {
    Ctx::new(EvalConfig {
        queries_per_db: 16,
        wl3_train: 120,
        wl3_synthetic: 40,
        wl3_scale: 20,
        wl3_job_light: 12,
        dace_epochs: 4,
        baseline_epochs: 4,
        ..EvalConfig::scaled(0.05)
    })
}

#[test]
fn representative_experiments_produce_wellformed_reports() {
    let ctx = micro_ctx();
    // The cheapest runner from each family: motivation (fig4), ablation
    // (fig10), plan-size analysis (fig11) and cold start (fig9).
    for id in ["fig4", "fig10", "fig11", "fig9"] {
        let report =
            run_experiment(id, &ctx).unwrap_or_else(|| panic!("runner {id} missing from registry"));
        assert!(report.contains('|'), "{id}: no table in report");
        assert!(
            report.to_lowercase().contains("expected shape"),
            "{id}: report must state the expected shape"
        );
        // Tables carry finite qerror numbers ≥ 1; spot check that at least
        // one plausible qerror cell appears.
        let has_number = report
            .split(['|', ' ', '\n'])
            .filter_map(|tok| tok.parse::<f64>().ok())
            .any(|v| (1.0..1e4).contains(&v));
        assert!(has_number, "{id}: no qerror values in report");
    }
}

#[test]
fn registry_descriptions_are_informative() {
    for (id, desc, _) in EXPERIMENTS {
        assert!(!desc.is_empty(), "{id} lacks a description");
        assert!(
            id.starts_with("fig") || id.starts_with("table") || *id == "plansearch",
            "unexpected experiment id {id}"
        );
    }
}
