//! Property tests for hostile-input hardening: arbitrary adversarial plan
//! trees — NaN/Inf/negative cost and cardinality estimates, degenerate
//! single-node plans, pathologically deep chains — fed through the full
//! prediction path must never panic and never produce a non-finite
//! prediction. Admission-time `validate_plan` is the first line of
//! defense; this suite proves the model itself survives anything that
//! slips past it (defense in depth).

use dace_core::{DaceEstimator, TrainConfig, Trainer};
use dace_plan::{
    validate_plan, Dataset, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, PlanTree,
    TreeBuilder, DEFAULT_MAX_PLAN_DEPTH,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn trained() -> &'static DaceEstimator {
    static EST: OnceLock<DaceEstimator> = OnceLock::new();
    EST.get_or_init(|| {
        let plans = (0..24)
            .map(|i| {
                let cost = 50.0 + 41.0 * i as f64;
                let mut b = TreeBuilder::new();
                let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                node.est_cost = cost;
                node.est_rows = cost * 4.0;
                node.actual_ms = cost * 0.005;
                node.actual_rows = cost * 4.0;
                let root = b.leaf(node);
                LabeledPlan {
                    tree: b.finish(root),
                    db_id: 0,
                    machine: MachineId::M1,
                }
            })
            .collect();
        Trainer::new(TrainConfig {
            epochs: 1,
            ..Default::default()
        })
        .fit(&Dataset::from_plans(plans))
        .unwrap()
    })
}

/// The pool of hostile estimate values a node can carry.
fn hostile_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-1.0),
        Just(-1e300),
        Just(0.0),
        Just(1e308),
        1.0f64..1e6, // benign values mixed in
    ]
}

/// A hostile plan: a random left-leaning tree of `depth` internal nodes,
/// every node's cost/rows drawn from the hostile pool.
fn hostile_plan() -> impl Strategy<Value = PlanTree> {
    (
        1usize..12,
        proptest::collection::vec((hostile_value(), hostile_value()), 12),
        proptest::collection::vec(0usize..4, 12),
    )
        .prop_map(|(depth, vals, types)| {
            let ty = |i: usize| match types[i] {
                0 => NodeType::SeqScan,
                1 => NodeType::HashJoin,
                2 => NodeType::Sort,
                _ => NodeType::IndexScan,
            };
            let mut b = TreeBuilder::new();
            let mut node = PlanNode::new(ty(0), OpPayload::Other);
            node.est_cost = vals[0].0;
            node.est_rows = vals[0].1;
            let mut cur = b.leaf(node);
            for (i, &(cost, rows)) in vals.iter().enumerate().take(depth).skip(1) {
                let mut node = PlanNode::new(ty(i), OpPayload::Other);
                node.est_cost = cost;
                node.est_rows = rows;
                cur = b.internal(node, vec![cur]);
            }
            b.finish(cur)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The full batch prediction path over hostile trees: no panic, every
    /// output finite. (`safe_log1p` in the featurizer is what makes the
    /// NaN/Inf cases hold.)
    #[test]
    fn hostile_plans_predict_finite(plans in proptest::collection::vec(hostile_plan(), 1..6)) {
        let est = trained();
        let refs: Vec<&PlanTree> = plans.iter().collect();
        let preds = est.predict_batch_ms(&refs);
        prop_assert_eq!(preds.len(), plans.len());
        for p in preds {
            prop_assert!(p.is_finite(), "hostile plan produced non-finite prediction {p}");
        }
    }

    /// `validate_plan` agrees with itself: hostile numeric estimates are
    /// flagged, and a plan it accepts genuinely has finite estimates.
    #[test]
    fn validate_plan_is_sound_on_hostile_trees(tree in hostile_plan()) {
        match validate_plan(&tree, DEFAULT_MAX_PLAN_DEPTH) {
            Ok(()) => {
                for id in tree.ids() {
                    prop_assert!(tree.node(id).est_cost.is_finite());
                    prop_assert!(tree.node(id).est_rows.is_finite());
                }
            }
            Err(e) => {
                // Typed rejection; rendering it must not panic either.
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn deep_chain_predicts_finite_without_overflow() {
    let est = trained();
    let mut b = TreeBuilder::new();
    let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
    node.est_cost = 100.0;
    node.est_rows = 1000.0;
    let mut cur = b.leaf(node);
    for _ in 0..300 {
        let mut node = PlanNode::new(NodeType::Materialize, OpPayload::Other);
        node.est_cost = 10.0;
        node.est_rows = 1000.0;
        cur = b.internal(node, vec![cur]);
    }
    let tree = b.finish(cur);
    // Deeper than the default serving depth limit would admit…
    assert!(validate_plan(&tree, 256).is_err());
    // …but the model still handles it without recursion blowups.
    let p = est.predict_ms(&tree);
    assert!(p.is_finite());
}
