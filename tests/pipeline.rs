//! End-to-end substrate pipeline: database → workload → optimizer →
//! executor → latency labels, with the invariants every downstream model
//! relies on.

use dace_catalog::{generate_database, suite_specs};
use dace_engine::{collect_dataset, explain_analyze};
use dace_plan::{MachineId, NodeType};
use dace_query::{render_sql, ComplexWorkloadGen, MscnSet, MscnWorkloadGen};

#[test]
fn labeled_plans_satisfy_model_input_invariants() {
    let db = generate_database(&suite_specs()[5], 0.05);
    let queries = ComplexWorkloadGen::default().generate(&db, 80);
    let ds = collect_dataset(&db, &queries, MachineId::M1);
    assert_eq!(ds.len(), 80);
    for plan in &ds.plans {
        let tree = &plan.tree;
        let n = tree.len();
        // DFS covers every node exactly once.
        let dfs = tree.dfs();
        assert_eq!(dfs.len(), n);
        let mut seen: Vec<bool> = vec![false; n];
        for id in &dfs {
            assert!(!seen[id.index()]);
            seen[id.index()] = true;
        }
        // Mask and heights align with the DFS sequence.
        assert_eq!(tree.ancestor_matrix().len(), n * n);
        let heights = tree.heights();
        assert_eq!(heights.len(), n);
        assert_eq!(heights[0], 0, "root first in DFS");
        // Every node carries estimates and labels.
        for id in tree.ids() {
            let node = tree.node(id);
            assert!(node.est_cost > 0.0 && node.est_cost.is_finite());
            assert!(node.est_rows >= 1.0);
            assert!(node.actual_ms >= 0.0 && node.actual_ms.is_finite());
            assert!(node.actual_rows >= 0.0);
        }
        // Root latency includes every child's latency — except Limit
        // (stops its child early) and Gather (parallelizes the subtree).
        let root = tree.node(tree.root());
        if !matches!(root.node_type, NodeType::Limit | NodeType::Gather) {
            for &c in &root.children {
                assert!(root.actual_ms >= tree.node(c).actual_ms * 0.99);
            }
        }
    }
}

#[test]
fn same_queries_two_machines_differ_systematically() {
    let db = generate_database(&suite_specs()[6], 0.05);
    let queries = ComplexWorkloadGen::default().generate(&db, 60);
    let m1 = collect_dataset(&db, &queries, MachineId::M1);
    let m2 = collect_dataset(&db, &queries, MachineId::M2);
    // Identical plans (same optimizer), different labels.
    let mut ratio_sum = 0.0;
    for (a, b) in m1.plans.iter().zip(&m2.plans) {
        assert_eq!(a.tree.len(), b.tree.len());
        assert_eq!(
            a.tree.node(a.tree.root()).node_type,
            b.tree.node(b.tree.root()).node_type
        );
        assert_eq!(a.tree.est_cost(), b.tree.est_cost());
        ratio_sum += b.latency_ms() / a.latency_ms();
    }
    let mean_ratio = ratio_sum / m1.len() as f64;
    assert!(
        (mean_ratio - 1.0).abs() > 0.02,
        "machines should have different latency scales, mean ratio {mean_ratio}"
    );
}

#[test]
fn sql_rendering_round_trips_workload_shapes() {
    let db = generate_database(&suite_specs()[0], 0.05);
    let gen = MscnWorkloadGen::default();
    for q in gen.gen_test(&db, MscnSet::JobLight, 20) {
        let sql = render_sql(&q, &db.schema);
        assert!(sql.starts_with("SELECT"));
        assert!(sql.contains("COUNT(*)"));
        assert!(sql.ends_with(';'));
        // Every join prints one equality condition.
        let eqs = sql.matches(" = ").count();
        assert!(eqs >= q.joins.len());
    }
}

#[test]
fn explain_analyze_covers_all_operators_in_corpus() {
    let db = generate_database(&suite_specs()[0], 0.05);
    let queries = ComplexWorkloadGen::default().generate(&db, 120);
    let mut seen_types = std::collections::HashSet::new();
    for q in queries.iter().take(120) {
        let (tree, text) = explain_analyze(&db, q, MachineId::M1);
        assert!(text.lines().count() >= tree.len());
        for id in tree.ids() {
            seen_types.insert(tree.node(id).node_type);
        }
    }
    // The corpus exercises a broad operator mix, including scans, a join
    // flavor, aggregation and auxiliaries.
    assert!(seen_types.len() >= 8, "only {seen_types:?}");
    assert!(seen_types.contains(&NodeType::SeqScan));
    assert!(
        seen_types.contains(&NodeType::HashJoin)
            || seen_types.contains(&NodeType::NestedLoop)
            || seen_types.contains(&NodeType::MergeJoin)
    );
}

#[test]
fn estimation_error_exists_but_is_bounded_on_average() {
    // The substrate must produce realistic cardinality misestimation:
    // nonzero (or the learning problem is trivial) but not absurd.
    let db = generate_database(&suite_specs()[7], 0.05);
    let queries = ComplexWorkloadGen::default().generate(&db, 100);
    let ds = collect_dataset(&db, &queries, MachineId::M1);
    let mut log_errors = Vec::new();
    for p in &ds.plans {
        let root = p.tree.node(p.tree.root());
        if root.actual_rows >= 1.0 {
            log_errors.push((root.est_rows / root.actual_rows).ln().abs());
        }
    }
    let mean: f64 = log_errors.iter().sum::<f64>() / log_errors.len() as f64;
    assert!(mean > 0.01, "optimizer estimates suspiciously perfect");
    assert!(
        mean < 5.0,
        "optimizer estimates absurdly bad (mean ln err {mean})"
    );
}
