//! Property tests across the whole pipeline: random queries against a fixed
//! database must produce well-formed plans, exact executor semantics and
//! consistent labels.

use dace_catalog::{generate_database, suite_specs, ColumnId, Database, TableId, NULL_CODE};
use dace_engine::{execute, label_query, plan_query};
use dace_eval::qerror;
use dace_plan::{CmpOp, MachineId};
use dace_query::{JoinEdge, Predicate, Query};
use proptest::prelude::*;

fn test_db() -> &'static Database {
    use std::sync::OnceLock;
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| generate_database(&suite_specs()[2], 0.05))
}

/// Strategy: a random single-table query with 0–2 predicates.
fn scan_query(db: &Database) -> impl Strategy<Value = Query> {
    let n_tables = db.schema.tables.len() as u32;
    (
        0..n_tables,
        proptest::collection::vec(
            (
                0u32..6,
                0.0f64..1.0,
                prop_oneof![
                    Just(CmpOp::Eq),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Gt),
                    Just(CmpOp::Le),
                    Just(CmpOp::Ge)
                ],
            ),
            0..3,
        ),
    )
        .prop_map(move |(t, raw_preds)| {
            let db = test_db();
            let table = TableId(t);
            let n_cols = db.schema.table(table).columns.len() as u32;
            let predicates = raw_preds
                .into_iter()
                .map(|(c, rank, op)| {
                    let column = ColumnId::new(table, c % n_cols);
                    let v = db.column_stats(column).value_at_rank(rank);
                    Predicate {
                        column,
                        op,
                        values: vec![v],
                    }
                })
                .collect();
            Query {
                db_id: db.db_id(),
                tables: vec![table],
                joins: vec![],
                predicates,
                group_by: None,
                aggregates: vec![],
                limit: None,
            }
        })
}

/// Strategy: a random 2-table FK join query.
fn join_query(db: &Database) -> impl Strategy<Value = Query> {
    let n_fks = db.schema.fks.len();
    (0..n_fks, 0.0f64..1.0).prop_map(move |(fk_idx, rank)| {
        let db = test_db();
        let fk = db.schema.fks[fk_idx];
        let edge = JoinEdge {
            child: fk.child,
            child_column: fk.child_column,
            parent: fk.parent,
        };
        // One range predicate on the parent PK.
        let column = ColumnId::new(fk.parent, 0);
        let v = db.column_stats(column).value_at_rank(rank);
        Query {
            db_id: db.db_id(),
            tables: vec![fk.child, fk.parent],
            joins: vec![edge],
            predicates: vec![Predicate {
                column,
                op: CmpOp::Le,
                values: vec![v],
            }],
            group_by: None,
            aggregates: vec![],
            limit: None,
        }
    })
}

/// Brute-force row count of a single-table query.
fn brute_scan_count(db: &Database, q: &Query) -> usize {
    let t = q.tables[0];
    (0..db.table_data(t).rows())
        .filter(|&r| {
            q.predicates.iter().all(|p| {
                let v = db.column_data(p.column)[r];
                if v == NULL_CODE {
                    return false;
                }
                match p.op {
                    CmpOp::Eq => v == p.values[0],
                    CmpOp::Lt => v < p.values[0],
                    CmpOp::Gt => v > p.values[0],
                    CmpOp::Le => v <= p.values[0],
                    CmpOp::Ge => v >= p.values[0],
                    _ => unreachable!("strategy only emits scalar comparisons"),
                }
            })
        })
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_execution_is_exact(q in scan_query(test_db())) {
        let db = test_db();
        let mut plan = plan_query(db, &q).unwrap();
        execute(db, &mut plan);
        prop_assert_eq!(plan.actual_rows as usize, brute_scan_count(db, &q));
    }

    #[test]
    fn join_output_bounded_by_child_side(q in join_query(test_db())) {
        let db = test_db();
        let mut plan = plan_query(db, &q).unwrap();
        execute(db, &mut plan);
        // FK (N:1) join output can never exceed the child table's rows.
        let child_rows = db.table_data(q.joins[0].child).rows() as f64;
        prop_assert!(plan.actual_rows <= child_rows + 0.5);
    }

    #[test]
    fn estimates_positive_and_labels_consistent(q in join_query(test_db())) {
        let db = test_db();
        let labeled = label_query(db, &q, MachineId::M1, 7).unwrap();
        let tree = &labeled.tree;
        prop_assert!(labeled.latency_ms() > 0.0);
        for id in tree.ids() {
            let node = tree.node(id);
            prop_assert!(node.est_rows >= 1.0);
            prop_assert!(node.est_cost > 0.0);
            // Cumulative time: parent ≥ each child (Limit/Gather excluded —
            // this corpus has neither).
            for &c in &node.children {
                prop_assert!(node.actual_ms >= tree.node(c).actual_ms * 0.99);
            }
        }
    }

    #[test]
    fn labeling_is_deterministic(q in join_query(test_db()), seed in 0u64..1000) {
        let db = test_db();
        let a = label_query(db, &q, MachineId::M2, seed).unwrap();
        let b = label_query(db, &q, MachineId::M2, seed).unwrap();
        prop_assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn qerror_properties(est in 1e-6f64..1e6, actual in 1e-6f64..1e6) {
        let q = qerror(est, actual);
        prop_assert!(q >= 1.0);
        let sym = qerror(actual, est);
        prop_assert!((q - sym).abs() < 1e-9 * q);
        // Scale invariance.
        let scaled = qerror(est * 7.0, actual * 7.0);
        prop_assert!((q - scaled).abs() < 1e-6 * q);
    }
}
