//! SQL text as the source of truth: parse a handwritten query, run it
//! through the whole engine, and check the results agree with the
//! structured-query path.

use dace_catalog::{generate_database, suite_specs};
use dace_engine::{execute, plan_query};
use dace_plan::Dataset;
use dace_query::{parse_sql, render_sql, ComplexWorkloadGen};

#[test]
fn parsed_queries_plan_and_execute_identically() {
    let db = generate_database(&suite_specs()[8], 0.03);
    let queries = ComplexWorkloadGen {
        max_joins: 3,
        max_predicates: 2,
        agg_prob: 0.4,
        seed: 31,
    }
    .generate(&db, 40);
    for q in &queries {
        let sql = render_sql(q, &db.schema);
        let parsed = parse_sql(&sql, &db.schema, q.db_id).expect("round-trip parse");
        let mut direct = plan_query(&db, q).unwrap();
        let mut via_sql = plan_query(&db, &parsed).unwrap();
        execute(&db, &mut direct);
        execute(&db, &mut via_sql);
        // Identical logical queries ⇒ identical plans and identical counts.
        assert_eq!(direct.node_type, via_sql.node_type, "sql: {sql}");
        assert_eq!(direct.est_cost, via_sql.est_cost, "sql: {sql}");
        assert_eq!(direct.actual_rows, via_sql.actual_rows, "sql: {sql}");
        assert_eq!(direct.len(), via_sql.len(), "sql: {sql}");
    }
}

#[test]
fn dataset_serde_roundtrip() {
    let db = generate_database(&suite_specs()[8], 0.02);
    let queries = ComplexWorkloadGen::default().generate(&db, 10);
    let ds = dace_engine::collect_dataset(&db, &queries, dace_plan::MachineId::M1);
    let json = serde_json::to_string(&ds).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(ds.len(), back.len());
    // Floats can shift by one ULP through the text encoding; a second
    // serialization is the fixed point, so compare at that level.
    let json2 = serde_json::to_string(&back).unwrap();
    let back2: Dataset = serde_json::from_str(&json2).unwrap();
    for ((a, b), c) in back.plans.iter().zip(&back2.plans).zip(&ds.plans) {
        assert_eq!(a, b, "serialization is not a fixed point");
        assert_eq!(a.db_id, c.db_id);
        assert_eq!(a.tree.len(), c.tree.len());
        assert!((a.latency_ms() - c.latency_ms()).abs() < 1e-9);
    }
}
