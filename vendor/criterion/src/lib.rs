//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! The build environment has no crates registry, so this crate implements
//! the surface the repo's `harness = false` benches use as a plain
//! wall-clock harness: warm up for `warm_up_time`, then time iterations
//! for `measurement_time` and print mean ns/iter per benchmark. Passing
//! `--test` on the command line (as `cargo test --benches` does) runs each
//! routine exactly once as a smoke test instead of measuring.

use std::time::{Duration, Instant};

/// Benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(500),
            measure: Duration::from_secs(2),
            sample_size: 10,
            test_mode: self.test_mode,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of benchmarks sharing timing settings.
pub struct BenchmarkGroup {
    name: String,
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Set the sample count (used as a minimum iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            min_iters: self.sample_size as u64,
            test_mode: self.test_mode,
            report: None,
        };
        f(&mut b);
        self.print_report(&id, &b);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            min_iters: self.sample_size as u64,
            test_mode: self.test_mode,
            report: None,
        };
        f(&mut b, input);
        self.print_report(&id, &b);
    }

    /// End the group (printing happens per-benchmark; this is a no-op).
    pub fn finish(self) {}

    fn print_report(&self, id: &BenchmarkId, b: &Bencher) {
        match b.report {
            Some((ns_per_iter, iters)) => println!(
                "{}/{:<28} time: {} ({} iters)",
                self.name,
                id.id,
                format_ns(ns_per_iter),
                iters
            ),
            None if self.test_mode => println!("{}/{:<28} smoke: ok", self.name, id.id),
            None => println!("{}/{:<28} (no measurement taken)", self.name, id.id),
        }
    }
}

/// Times a closure; handed to benchmark functions.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    min_iters: u64,
    test_mode: bool,
    report: Option<(f64, u64)>,
}

impl Bencher {
    /// Measure `routine` (or run it once in `--test` smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: run until the warm-up budget elapses (at least once).
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: run until the budget elapses AND the minimum
        // iteration count is met, then report mean wall-clock per iter.
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measure && iters >= self.min_iters {
                break;
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.report = Some((ns, iters));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{:>10.1} ns/iter", ns)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_smokes() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("g");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran >= 4, "warm-up + at least sample_size iterations");
        group.finish();

        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x
            })
        });
        assert_eq!(ran, 1, "smoke mode runs the routine exactly once");
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(12_000_000_000.0).contains("s/iter"));
    }
}
