//! Offline drop-in subset of the `crossbeam` scoped-thread API.
//!
//! The build environment has no crates registry; since Rust 1.63
//! `std::thread::scope` provides the same guarantees crossbeam's scoped
//! threads pioneered, so this crate is a thin signature adapter: crossbeam's
//! `scope(|s| ...)` returns a `Result` and hands spawned closures a `&Scope`
//! argument (hence the `|_|` at call sites), which we emulate over the std
//! primitive.

use std::any::Any;

/// Scope handle passed to the `scope` closure; spawns scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a placeholder argument
    /// (crossbeam passes a nested `&Scope`; call sites here ignore it).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(())),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Run `f` with a scope that may borrow from the caller's stack; all
/// spawned threads are joined before this returns. Panics in *joined*
/// threads surface through their handles; the outer `Result` is `Ok`
/// unless the scope itself fails (it cannot with the std backend).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(move |s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut results: Vec<u64> = Vec::new();
        scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("worker panicked"));
            }
        })
        .expect("scope failed");
        assert_eq!(results, vec![3, 7]);
    }

    #[test]
    fn panics_surface_through_join() {
        let caught = scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .expect("scope failed");
        assert!(caught.is_err());
    }
}
