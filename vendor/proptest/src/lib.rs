//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates registry, so this crate implements
//! the surface the repo's property tests use as a *sampling* framework:
//! each `proptest!` test evaluates its strategies once, then draws
//! `ProptestConfig::cases` deterministic samples (seeded from the test
//! name) and runs the body on each. Failing cases panic with the sampled
//! inputs via `prop_assert!`; there is no shrinking.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test name
/// so every run (and machine) samples the same cases.
pub fn test_rng(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// A generator of random values (sampling-only analogue of upstream's
/// `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice between several strategies (backs `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Half-open length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a `proptest!` body (panics — no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice between the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Define sampled property tests. Strategies are evaluated once per test
/// fn; each case draws fresh values from a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = $crate::Strategy::sample(&__strategy, &mut __rng);
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec(0u32..5, 2..6),
            tag in prop_oneof![Just("a"), Just("b")]
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(tag == "a" || tag == "b");
        }

        #[test]
        fn prop_map_applies(y in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 20);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = (0u64..1_000_000, crate::collection::vec(-1.0f64..1.0, 1..4));
        let draw = |name: &str| {
            let mut rng = crate::test_rng(name);
            (0..10)
                .map(|_| Strategy::sample(&s, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw("t"), draw("t"));
        assert_ne!(draw("t"), draw("u"));
    }
}
