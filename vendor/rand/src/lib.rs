//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the narrow slice of `rand` it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] sampling
//! methods (`gen`, `gen_bool`, `gen_range`) and
//! [`seq::SliceRandom::shuffle`]/`choose`. The generator is xoshiro256++
//! seeded through SplitMix64 — a different stream than upstream `SmallRng`,
//! which is fine because the repo only relies on seeded *reproducibility*,
//! never on specific draw values.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce without an explicit range.
pub trait Standard: Sized {
    /// Sample one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample a value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integers and floats uniformly sampleable over a range.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn uniform_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased integer draw from `[0, span)` via Lemire-style rejection.
fn uniform_u64_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn uniform_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain request (64-bit type): raw bits are
                    // already uniform.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn uniform_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::uniform(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::uniform_inclusive(rng, *self.start(), *self.end())
    }
}

/// Sampling methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample from a type's standard distribution (`f64`/`f32` in `[0,1)`,
    /// full-domain integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]");
        let u: f64 = self.gen();
        u < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++ with SplitMix64
    /// seeding (the same construction upstream `SmallRng` family uses).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random element selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let one = rng.gen_range(5..=5u32);
            assert_eq!(one, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the slice sorted");
        assert!(xs.choose(&mut rng).is_some());
    }
}
