//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no crates registry, so the workspace vendors a
//! value-tree serialization framework under serde's names: deriving
//! `Serialize`/`Deserialize` maps a type to and from a self-describing
//! [`Value`], and the sibling `serde_json` crate renders/parses that value
//! as JSON text. Only the surface this repo uses is implemented — derives
//! on non-generic structs and enums, with `#[serde(skip)]` and
//! `#[serde(default [= "path"])]` field attributes.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the data model both the derive
/// macros and `serde_json` speak).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also carries non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside `i64` range.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a field in serialized map entries.
pub fn map_get<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Error with a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Serialize into the value data model.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialize from the value data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= i64::MIN as i128 && (*self as i128) <= i64::MAX as i128 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                let wide: i128 = match v {
                    Value::I64(i) => *i as i128,
                    Value::U64(u) => *u as i128,
                    Value::F64(f) if f.fract() == 0.0 && f.is_finite() => *f as i128,
                    _ => return Err(Error::msg("expected integer")),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if self.is_finite() {
                    Value::F64(*self as f64)
                } else {
                    // JSON has no NaN/inf; serde_json also emits null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg("expected number")),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(Deserialize::deserialize)
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::msg("expected map"))?;
        entries
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::deserialize(item)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::msg("expected tuple sequence"))?;
                let mut it = s.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::deserialize(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?
                    },
                )+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f32::deserialize(&1.5f32.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        let big = u64::MAX;
        assert_eq!(u64::deserialize(&big.serialize()).unwrap(), big);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::deserialize(&o.serialize()).unwrap(), o);
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::deserialize(&n.serialize()).unwrap(), n);
        let t = (1u8, -2i32, 3.5f64);
        assert_eq!(<(u8, i32, f64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn nonfinite_floats_become_null_nan() {
        assert_eq!(f64::NAN.serialize(), Value::Null);
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
    }
}
