//! Offline `Serialize`/`Deserialize` derive macros for the vendored serde
//! subset (`vendor/serde`).
//!
//! `syn`/`quote` are unavailable offline, so the item is parsed directly
//! from the raw `TokenStream` and the impls are emitted as strings. The
//! supported grammar is exactly what this workspace uses: non-generic
//! structs (named, tuple, unit) and enums (unit, tuple and struct
//! variants), plus the `#[serde(skip)]` and `#[serde(default [= "path"])]`
//! field attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed `#[serde(...)]` field attributes.
#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some(path)` for `default = "path"`, `Some("")` for bare `default`.
    default: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kind = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (offline subset): {name}");
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(name, parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(name, count_top_level_elems(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct(name),
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, got {other}"),
    }
}

/// Skip attributes starting at `*i`, returning any `#[serde(...)]` contents.
fn collect_attrs(toks: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let TokenTree::Group(g) = &toks[*i] else {
            panic!("serde_derive: malformed attribute");
        };
        parse_serde_attr(g.stream(), &mut attrs);
        *i += 1;
    }
    attrs
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    let _ = collect_attrs(toks, i);
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // pub(crate) / pub(super) / pub(in ...)
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, got {other:?}"),
    }
}

/// Parse the inside of one `#[...]` group, folding any `serde(...)` list
/// into `attrs`.
fn parse_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let [TokenTree::Ident(id), TokenTree::Group(g)] = &toks[..] else {
        return; // #[doc = "..."] and friends
    };
    if id.to_string() != "serde" {
        return;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(w) => match w.to_string().as_str() {
                "skip" => attrs.skip = true,
                "default" => {
                    // bare `default` or `default = "path"`
                    if matches!(inner.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        let TokenTree::Literal(lit) = &inner[j + 2] else {
                            panic!("serde_derive: default expects a string literal");
                        };
                        attrs.default = Some(unquote(&lit.to_string()));
                        j += 2;
                    } else {
                        attrs.default = Some(String::new());
                    }
                }
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde_derive: malformed serde attribute: {other:?}"),
        }
        j += 1;
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parse `name: Type` fields (with attributes) from a brace-group stream.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = collect_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field {name}, got {other:?}"),
        }
        skip_type(&toks, &mut i);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Advance past one type, stopping after the comma that terminates it (or
/// at end of stream). Tracks `<`/`>` depth because generic-argument commas
/// are not field separators.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Number of top-level comma-separated elements in a paren group.
fn count_top_level_elems(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for (k, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            // The `k + 1` guard ignores a trailing comma.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && k + 1 < toks.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_top_level_elems(g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(g.stream())));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip an optional `= discriminant` and the separating comma.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ------------------------------------------------------------- generation

fn default_expr(attrs: &FieldAttrs) -> String {
    match attrs.default.as_deref() {
        Some("") | None => "::std::default::Default::default()".to_string(),
        Some(path) => format!("{path}()"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "__m.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(__m)\n}}\n}}\n"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ ::serde::Serialize::serialize(&self.0) }}\n}}\n"
        ),
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Seq(vec![{}]) }}\n}}\n",
                elems.join(", ")
            )
        }
        Item::UnitStruct(name) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
        ),
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Tuple(vn, 1) => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::serialize(__x0))]),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__x{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::serialize(__x{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn named_field_deser(owner: &str, fields: &[Field], map_var: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.attrs.skip {
            inits.push_str(&format!("{}: {},\n", f.name, default_expr(&f.attrs)));
            continue;
        }
        let missing = if f.attrs.default.is_some() {
            default_expr(&f.attrs)
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::msg(\"{owner}: missing field {n}\"))",
                n = f.name
            )
        };
        inits.push_str(&format!(
            "{n}: match ::serde::map_get({map_var}, \"{n}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            n = f.name
        ));
    }
    inits
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct(name, fields) => {
            let inits = named_field_deser(name, fields, "__m");
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::Error::msg(\"{name}: expected map\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Item::TupleStruct(name, 1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&__s[{k}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::msg(\"{name}: expected sequence\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"{name}: wrong tuple length\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Item::UnitStruct(name) => format!("::std::result::Result::Ok({name})"),
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Tuple(vn, 1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(_inner)?)),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&__s[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __s = _inner.as_seq().ok_or_else(|| ::serde::Error::msg(\"{name}::{vn}: expected sequence\"))?;\n\
                             if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"{name}::{vn}: wrong arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            elems.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let inits = named_field_deser(&format!("{name}::{vn}"), fields, "__m");
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __m = _inner.as_map().ok_or_else(|| ::serde::Error::msg(\"{name}::{vn}: expected map\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"{name}: unknown variant\")),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, _inner) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                 {payload_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"{name}: unknown variant\")),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"{name}: expected variant\")),\n}}"
            )
        }
    };
    let name = match item {
        Item::NamedStruct(n, _)
        | Item::TupleStruct(n, _)
        | Item::UnitStruct(n)
        | Item::Enum(n, _) => n,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
