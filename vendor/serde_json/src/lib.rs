//! Offline JSON text layer for the vendored serde subset: renders a
//! [`serde::Value`] as JSON and parses JSON back into one.
//!
//! Numbers print through Rust's shortest-round-trip float formatting, so
//! `f32`/`f64` values survive a serialize → parse cycle bit-exactly (modulo
//! non-finite values, which become `null` as in upstream serde_json).

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error (shared with the serde subset).
pub type Error = serde::Error;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    s.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_exactly() {
        let pi = std::f64::consts::PI;
        let s = to_string(&pi).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, pi);
        let x = 0.1f32 + 0.2f32;
        let back32: f32 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back32, x);
        let neg: i64 = from_str("-42").unwrap();
        assert_eq!(neg, -42);
        let big: u64 = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(big, u64::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f64, -2.0, 0.0];
        let back: Vec<f64> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let s = "quote \" slash \\ nl \n tab \t unicode é".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn whitespace_and_errors() {
        let v: Vec<u32> = from_str(" [ 1 , 2 , 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_str::<u32>("[1,2").is_err());
        assert!(from_str::<u32>("1 garbage").is_err());
        assert!(from_str::<bool>("flase").is_err());
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
